//! The IA-32-like implementation ISA and its simulated processor.
//!
//! This is one of the two I-ISAs of the reproduction (the paper's
//! evaluation targets Intel IA-32 and SPARC V9). It is a CISC,
//! two-address, 8-GPR machine with memory operands and condition-flag
//! branching. Deviations from real IA-32, documented in DESIGN.md:
//! registers are 64 bits wide (so LLVA `long` needs no register pairs),
//! and return addresses live in a simulator-internal frame stack rather
//! than in memory (arguments are still passed on the memory stack).
//!
//! Instruction byte sizes reported by [`native_size`](X86Inst::native_size)
//! approximate real IA-32 encodings and feed the "Native size" column
//! of Table 2.

use crate::common::{Exit, Sym, Trap, TrapKind, Width};
use crate::memory::Memory;
use llva_core::intrinsics::Intrinsic;
use std::sync::Arc;

/// The eight general-purpose registers (64-bit in this simulation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Gpr {
    /// Accumulator / return value.
    Eax,
    /// Counter / scratch.
    Ecx,
    /// Data / division remainder.
    Edx,
    /// Callee-saved scratch.
    Ebx,
    /// Stack pointer.
    Esp,
    /// Frame pointer.
    Ebp,
    /// Source index.
    Esi,
    /// Destination index.
    Edi,
}

impl Gpr {
    /// All GPRs in encoding order.
    pub const ALL: [Gpr; 8] = [
        Gpr::Eax,
        Gpr::Ecx,
        Gpr::Edx,
        Gpr::Ebx,
        Gpr::Esp,
        Gpr::Ebp,
        Gpr::Esi,
        Gpr::Edi,
    ];

    fn idx(self) -> usize {
        Gpr::ALL.iter().position(|&g| g == self).expect("in ALL")
    }
}

/// The eight SSE-like floating-point registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fpr(pub u8);

/// A `[base + disp]` memory operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemOp {
    /// Base register.
    pub base: Gpr,
    /// Signed displacement.
    pub disp: i32,
}

/// Two-address ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Shift left.
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right.
    Sar,
}

/// Branch conditions (signed L/G*, unsigned B/A*).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cond {
    /// Equal.
    E,
    /// Not equal.
    Ne,
    /// Signed less.
    L,
    /// Signed greater.
    G,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned below.
    B,
    /// Unsigned above.
    A,
    /// Unsigned below-or-equal.
    Be,
    /// Unsigned above-or-equal.
    Ae,
}

/// Floating-point ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FpOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

/// Result-width normalization applied by ALU operations — models the
/// fact that real IA-32 arithmetic operates at 32-bit register width
/// for `int`-sized values (no separate extend instruction needed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Norm {
    /// Full 64-bit result (this simulator's registers are 64-bit).
    #[default]
    None,
    /// Sign-extend the low 32 bits (signed `int` semantics).
    Sext32,
    /// Zero-extend the low 32 bits (unsigned `uint` semantics).
    Zext32,
}

impl Norm {
    /// Applies the normalization.
    pub fn apply(self, v: u64) -> u64 {
        match self {
            Norm::None => v,
            Norm::Sext32 => (v as u32) as i32 as i64 as u64,
            Norm::Zext32 => u64::from(v as u32),
        }
    }
}

/// One IA-32-like instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum X86Inst {
    /// `mov r, imm`.
    MovRI(Gpr, i64),
    /// `mov r, r`.
    MovRR(Gpr, Gpr),
    /// `mov r, sym` (address constant; relocated at load time).
    MovRSym(Gpr, Sym),
    /// Load from memory, optionally sign-extending.
    Load {
        /// Destination register.
        dst: Gpr,
        /// Address operand.
        mem: MemOp,
        /// Access width.
        width: Width,
        /// Sign-extend narrow loads.
        signed: bool,
    },
    /// Store to memory.
    Store {
        /// Source register.
        src: Gpr,
        /// Address operand.
        mem: MemOp,
        /// Access width.
        width: Width,
    },
    /// `lea r, [base+disp]`.
    Lea(Gpr, MemOp),
    /// `op r, r` (at the width implied by `Norm`).
    AluRR(AluOp, Gpr, Gpr, Norm),
    /// `op r, imm`.
    AluRI(AluOp, Gpr, i64, Norm),
    /// `op r, qword [mem]`.
    AluRM(AluOp, Gpr, MemOp, Norm),
    /// `imul r, r`.
    IMulRR(Gpr, Gpr, Norm),
    /// `imul r, qword [mem]`.
    IMulRM(Gpr, MemOp, Norm),
    /// Sign-extend EAX into EDX (cdq/cqo).
    Cdq,
    /// Divide EDX:EAX by a register; quotient→EAX, remainder→EDX.
    Div {
        /// Signed (idiv) vs unsigned (div).
        signed: bool,
        /// Divisor register.
        divisor: Gpr,
        /// When `false`, a zero divisor yields 0 instead of trapping —
        /// the translation of an LLVA `div` with `ExceptionsEnabled`
        /// cleared (§3.3).
        trapping: bool,
        /// Result-width normalization.
        norm: Norm,
    },
    /// `cmp r, r`.
    CmpRR(Gpr, Gpr),
    /// `cmp r, imm`.
    CmpRI(Gpr, i64),
    /// `cmp r, qword [mem]`.
    CmpRM(Gpr, MemOp),
    /// `setcc r` (r := 0/1).
    Setcc(Cond, Gpr),
    /// Unconditional jump to an instruction index.
    Jmp(u32),
    /// Conditional jump.
    Jcc(Cond, u32),
    /// Direct call; `unwind` is the landing pad for `unwind` (from an
    /// LLVA `invoke`).
    CallFn {
        /// Callee function index.
        func: u32,
        /// Optional unwind landing pad (instruction index in *this*
        /// function).
        unwind: Option<u32>,
    },
    /// Indirect call through a register holding a function "address".
    CallIndirect {
        /// Register with the callee.
        target: Gpr,
        /// Optional unwind landing pad.
        unwind: Option<u32>,
    },
    /// Call an LLVA intrinsic (§3.5); arguments follow the stack
    /// convention.
    CallIntrinsic {
        /// Which intrinsic.
        which: Intrinsic,
        /// Number of stack arguments.
        nargs: u8,
    },
    /// Return (restores the caller frame).
    Ret,
    /// LLVA `unwind`: pop frames to the nearest unwind landing pad.
    Unwind,
    /// `push r`.
    Push(Gpr),
    /// `pop r`.
    Pop(Gpr),
    /// Load float register from memory.
    FLoad {
        /// Destination.
        dst: Fpr,
        /// Address.
        mem: MemOp,
        /// 32-bit (float) vs 64-bit (double).
        is32: bool,
    },
    /// Store float register to memory.
    FStore {
        /// Source.
        src: Fpr,
        /// Address.
        mem: MemOp,
        /// 32-bit vs 64-bit.
        is32: bool,
    },
    /// `movaps`-style register move.
    FMovRR(Fpr, Fpr),
    /// Float ALU `dst ⊕= src`.
    FAlu(FpOp, Fpr, Fpr, bool),
    /// Float compare; sets flags like `ucomiss`.
    FCmp(Fpr, Fpr, bool),
    /// Convert integer to float.
    CvtIF {
        /// Destination float register.
        dst: Fpr,
        /// Source GPR.
        src: Gpr,
        /// Produce f32 (vs f64).
        to32: bool,
        /// Treat the integer as signed.
        signed: bool,
    },
    /// Convert float to integer (truncating).
    CvtFI {
        /// Destination GPR.
        dst: Gpr,
        /// Source float register.
        src: Fpr,
        /// Source is f32 (vs f64).
        from32: bool,
        /// Produce a signed integer.
        signed: bool,
    },
    /// Convert between f32 and f64.
    CvtFF {
        /// Destination.
        dst: Fpr,
        /// Source.
        src: Fpr,
        /// Destination is f32.
        to32: bool,
    },
    /// Move float bits to a GPR (for returns through EAX).
    MovGF(Gpr, Fpr),
    /// Move GPR bits to a float register.
    MovFG(Fpr, Gpr),
    /// Sign-extend the low `width` bytes of a register in place.
    SignExtend(Gpr, Width),
    /// Zero-extend the low `width` bytes of a register in place.
    ZeroExtend(Gpr, Width),
}

impl X86Inst {
    /// Approximate encoded size in bytes of the real IA-32 equivalent.
    pub fn native_size(&self) -> u32 {
        fn disp_size(d: i32) -> u32 {
            if d == 0 {
                1
            } else if (-128..=127).contains(&d) {
                2
            } else {
                5
            }
        }
        fn imm_size(v: i64) -> u32 {
            if (-128..=127).contains(&v) {
                1
            } else {
                4
            }
        }
        match self {
            X86Inst::MovRI(_, v) => {
                if i32::try_from(*v).is_ok() {
                    5
                } else {
                    10
                }
            }
            X86Inst::MovRR(..) => 2,
            X86Inst::MovRSym(..) => 5,
            X86Inst::Load { mem, .. } | X86Inst::Store { mem, .. } => 1 + disp_size(mem.disp),
            X86Inst::Lea(_, mem) => 1 + disp_size(mem.disp),
            X86Inst::AluRR(..) => 2,
            X86Inst::AluRI(_, _, v, _) => 2 + imm_size(*v),
            X86Inst::AluRM(_, _, mem, _) | X86Inst::CmpRM(_, mem) | X86Inst::IMulRM(_, mem, _) => {
                1 + disp_size(mem.disp) + 1
            }
            X86Inst::IMulRR(..) => 3,
            X86Inst::Cdq => 1,
            X86Inst::Div { .. } => 2,
            X86Inst::CmpRR(..) => 2,
            X86Inst::CmpRI(_, v) => 2 + imm_size(*v),
            X86Inst::Setcc(..) => 3,
            X86Inst::Jmp(_) => 5,
            X86Inst::Jcc(..) => 6,
            X86Inst::CallFn { .. } | X86Inst::CallIntrinsic { .. } => 5,
            X86Inst::CallIndirect { .. } => 2,
            X86Inst::Ret => 1,
            X86Inst::Unwind => 5,
            X86Inst::Push(_) | X86Inst::Pop(_) => 1,
            X86Inst::FLoad { mem, .. } | X86Inst::FStore { mem, .. } => 3 + disp_size(mem.disp),
            X86Inst::FMovRR(..) => 3,
            X86Inst::FAlu(..) => 4,
            X86Inst::FCmp(..) => 4,
            X86Inst::CvtIF { .. } | X86Inst::CvtFI { .. } | X86Inst::CvtFF { .. } => 4,
            X86Inst::MovGF(..) | X86Inst::MovFG(..) => 4,
            X86Inst::SignExtend(..) | X86Inst::ZeroExtend(..) => 3,
        }
    }
}

/// A fully translated native program: per-function code plus the global
/// address map produced at load/relocation time.
#[derive(Debug, Clone, Default)]
pub struct X86Program {
    functions: Vec<Option<Arc<Vec<X86Inst>>>>,
    global_addrs: Vec<u64>,
}

impl X86Program {
    /// Creates an empty program with `num_functions` translation slots
    /// and a global address map.
    pub fn new(num_functions: usize, global_addrs: Vec<u64>) -> X86Program {
        X86Program {
            functions: vec![None; num_functions],
            global_addrs,
        }
    }

    /// Grows the translation table to at least `n` slots (self-
    /// extending code adds functions after program creation, §3.4).
    pub fn ensure_slots(&mut self, n: usize) {
        if self.functions.len() < n {
            self.functions.resize(n, None);
        }
    }

    /// Installs translated code for function `idx` (JIT or cache load).
    pub fn install(&mut self, idx: u32, code: Vec<X86Inst>) {
        self.functions[idx as usize] = Some(Arc::new(code));
    }

    /// Removes the code for function `idx` (SMC invalidation, §3.4).
    pub fn invalidate(&mut self, idx: u32) {
        self.functions[idx as usize] = None;
    }

    /// Whether code for function `idx` is installed.
    pub fn is_installed(&self, idx: u32) -> bool {
        self.functions
            .get(idx as usize)
            .map(Option::is_some)
            .unwrap_or(false)
    }

    /// The installed code for function `idx`.
    pub fn code(&self, idx: u32) -> Option<&Arc<Vec<X86Inst>>> {
        self.functions.get(idx as usize).and_then(Option::as_ref)
    }

    /// The relocated address of global `idx`.
    pub fn global_addr(&self, idx: u32) -> u64 {
        self.global_addrs[idx as usize]
    }

    /// Total native instruction count across installed functions
    /// (the "#X86 Inst." column of Table 2).
    pub fn total_insts(&self) -> usize {
        self.functions
            .iter()
            .flatten()
            .map(|c| c.len())
            .sum()
    }

    /// Total approximate native code bytes across installed functions.
    pub fn total_bytes(&self) -> usize {
        self.functions
            .iter()
            .flatten()
            .flat_map(|c| c.iter())
            .map(|i| i.native_size() as usize)
            .sum()
    }
}

/// Tag bit marking a value as a function "address". Kept below bit 31
/// so tagged function pointers survive 32-bit pointer stores on the
/// IA-32-like target (simulated memories stay far below 1 GiB).
pub const FUNC_TAG: u64 = 1 << 30;

/// Packs a function index into a tagged function address value.
pub fn function_value(idx: u32) -> u64 {
    FUNC_TAG | u64::from(idx)
}

#[derive(Debug, Clone, Copy)]
struct Frame {
    func: u32,
    ret_pc: u32,
    saved_sp: u64,
    unwind: Option<u32>,
    // The caller's register file at the call site — what a real
    // unwinder reconstructs from unwind tables. Restored when an
    // `unwind` lands at this call's landing pad, so EBP and values
    // homed in callee-saved registers survive the non-local exit.
    saved_regs: [u64; 8],
    saved_fregs: [u64; 8],
}

#[derive(Debug, Clone, Copy, Default)]
struct Flags {
    lhs: u64,
    rhs: u64,
    float: bool,
    unordered: bool,
    flhs: f64,
    frhs: f64,
}

/// The simulated IA-32-like processor.
#[derive(Debug)]
pub struct X86Machine {
    /// The processor's memory.
    pub mem: Memory,
    regs: [u64; 8],
    fregs: [u64; 8],
    flags: Flags,
    frames: Vec<Frame>,
    cur_func: u32,
    pc: u32,
    stats: crate::common::ExecStats,
    pending_intrinsic: bool,
}

impl X86Machine {
    /// Creates a machine over `mem`, with the stack pointer initialized
    /// to the top of memory.
    pub fn new(mem: Memory) -> X86Machine {
        let sp = mem.initial_sp();
        let mut m = X86Machine {
            mem,
            regs: [0; 8],
            fregs: [0; 8],
            flags: Flags::default(),
            frames: Vec::new(),
            cur_func: 0,
            pc: 0,
            stats: crate::common::ExecStats::default(),
            pending_intrinsic: false,
        };
        m.regs[Gpr::Esp.idx()] = sp;
        m
    }

    /// Execution statistics so far.
    pub fn stats(&self) -> crate::common::ExecStats {
        self.stats
    }

    /// Reads a GPR (tests and the engine use this to fetch results).
    pub fn reg(&self, r: Gpr) -> u64 {
        self.regs[r.idx()]
    }

    /// Writes a GPR.
    pub fn set_reg(&mut self, r: Gpr, v: u64) {
        self.regs[r.idx()] = v;
    }

    /// Reads a float register's raw bits.
    pub fn freg(&self, r: Fpr) -> u64 {
        self.fregs[r.0 as usize]
    }

    /// Positions the machine at the entry of function `func` with the
    /// given arguments pushed per the stack calling convention.
    pub fn call_entry(&mut self, func: u32, args: &[u64]) -> Result<(), Trap> {
        // push args right-to-left
        for &a in args.iter().rev() {
            self.push(a).map_err(|k| self.trap_here(k))?;
        }
        self.cur_func = func;
        self.pc = 0;
        self.frames.clear();
        Ok(())
    }

    /// The (function, pc) the machine is currently positioned at.
    pub fn current_location(&self) -> (u32, u32) {
        (self.cur_func, self.pc)
    }

    /// The current call depth (used by `llva.stack.frames`).
    pub fn call_depth(&self) -> usize {
        self.frames.len() + 1
    }

    /// The function index executing at `depth` (0 = innermost).
    pub fn frame_function(&self, depth: usize) -> Option<u32> {
        if depth == 0 {
            return Some(self.cur_func);
        }
        self.frames
            .iter()
            .rev()
            .nth(depth - 1)
            .map(|f| f.func)
    }

    fn trap_here(&self, kind: TrapKind) -> Trap {
        Trap {
            kind,
            function: self.cur_func,
            pc: self.pc,
        }
    }

    fn push(&mut self, v: u64) -> Result<(), TrapKind> {
        let sp = self.regs[Gpr::Esp.idx()] - 8;
        if sp < self.mem.stack_limit() {
            return Err(TrapKind::StackOverflow);
        }
        self.mem.store(sp, v, Width::B8)?;
        self.regs[Gpr::Esp.idx()] = sp;
        Ok(())
    }

    fn pop(&mut self) -> Result<u64, TrapKind> {
        let sp = self.regs[Gpr::Esp.idx()];
        let v = self.mem.load(sp, Width::B8)?;
        self.regs[Gpr::Esp.idx()] = sp + 8;
        Ok(v)
    }

    fn addr(&self, mem: MemOp) -> u64 {
        self.regs[mem.base.idx()].wrapping_add(mem.disp as i64 as u64)
    }

    fn cond(&self, c: Cond) -> bool {
        if self.flags.float {
            let (a, b) = (self.flags.flhs, self.flags.frhs);
            if self.flags.unordered {
                return matches!(c, Cond::Ne);
            }
            return match c {
                Cond::E => a == b,
                Cond::Ne => a != b,
                Cond::L | Cond::B => a < b,
                Cond::G | Cond::A => a > b,
                Cond::Le | Cond::Be => a <= b,
                Cond::Ge | Cond::Ae => a >= b,
            };
        }
        let (a, b) = (self.flags.lhs, self.flags.rhs);
        let (sa, sb) = (a as i64, b as i64);
        match c {
            Cond::E => a == b,
            Cond::Ne => a != b,
            Cond::L => sa < sb,
            Cond::G => sa > sb,
            Cond::Le => sa <= sb,
            Cond::Ge => sa >= sb,
            Cond::B => a < b,
            Cond::A => a > b,
            Cond::Be => a <= b,
            Cond::Ae => a >= b,
        }
    }

    /// Completes a pending intrinsic call with its return value.
    pub fn finish_intrinsic(&mut self, ret: u64) {
        debug_assert!(self.pending_intrinsic);
        self.regs[Gpr::Eax.idx()] = ret;
        self.pending_intrinsic = false;
        self.pc += 1;
    }

    /// Runs until an [`Exit`] occurs, executing at most `fuel`
    /// instructions.
    pub fn run(&mut self, program: &X86Program, fuel: u64) -> Exit {
        let mut remaining = fuel;
        loop {
            if remaining == 0 {
                return Exit::OutOfFuel;
            }
            remaining -= 1;
            let Some(code) = program.code(self.cur_func) else {
                return Exit::NeedFunction(self.cur_func);
            };
            let code = Arc::clone(code);
            let Some(inst) = code.get(self.pc as usize) else {
                // falling off the end acts like `ret`
                match self.do_ret() {
                    Some(exit) => return exit,
                    None => continue,
                }
            };
            self.stats.instructions += 1;
            match self.step(inst, program) {
                Ok(None) => {}
                Ok(Some(exit)) => return exit,
                Err(kind) => return Exit::Trapped(self.trap_here(kind)),
            }
        }
    }

    fn do_ret(&mut self) -> Option<Exit> {
        match self.frames.pop() {
            None => Some(Exit::Halt(self.regs[Gpr::Eax.idx()])),
            Some(f) => {
                self.cur_func = f.func;
                self.pc = f.ret_pc;
                None
            }
        }
    }

    #[allow(clippy::too_many_lines)]
    fn step(&mut self, inst: &X86Inst, program: &X86Program) -> Result<Option<Exit>, TrapKind> {
        use X86Inst as I;
        let mut next_pc = self.pc + 1;
        let mut cycles = 1u64;
        match inst {
            I::MovRI(r, v) => self.regs[r.idx()] = *v as u64,
            I::MovRR(d, s) => self.regs[d.idx()] = self.regs[s.idx()],
            I::MovRSym(d, sym) => {
                self.regs[d.idx()] = match sym {
                    Sym::Global(g) => program.global_addr(*g),
                    Sym::Function(f) => function_value(*f),
                }
            }
            I::Load {
                dst,
                mem,
                width,
                signed,
            } => {
                let a = self.addr(*mem);
                let v = if *signed {
                    self.mem.load_signed(a, *width)?
                } else {
                    self.mem.load(a, *width)?
                };
                self.regs[dst.idx()] = v;
                self.stats.loads += 1;
                cycles = 2;
            }
            I::Store { src, mem, width } => {
                let a = self.addr(*mem);
                self.mem.store(a, self.regs[src.idx()], *width)?;
                self.stats.stores += 1;
                cycles = 2;
            }
            I::Lea(d, mem) => self.regs[d.idx()] = self.addr(*mem),
            I::AluRR(op, d, s, norm) => {
                let v = self.regs[s.idx()];
                self.regs[d.idx()] = norm.apply(alu(*op, self.regs[d.idx()], v));
            }
            I::AluRI(op, d, v, norm) => {
                self.regs[d.idx()] = norm.apply(alu(*op, self.regs[d.idx()], *v as u64));
            }
            I::AluRM(op, d, mem, norm) => {
                let a = self.addr(*mem);
                let v = self.mem.load(a, Width::B8)?;
                self.regs[d.idx()] = norm.apply(alu(*op, self.regs[d.idx()], v));
                self.stats.loads += 1;
                cycles = 2;
            }
            I::IMulRR(d, s, norm) => {
                self.regs[d.idx()] =
                    norm.apply(self.regs[d.idx()].wrapping_mul(self.regs[s.idx()]));
                cycles = 3;
            }
            I::IMulRM(d, mem, norm) => {
                let a = self.addr(*mem);
                let v = self.mem.load(a, Width::B8)?;
                self.regs[d.idx()] = norm.apply(self.regs[d.idx()].wrapping_mul(v));
                self.stats.loads += 1;
                cycles = 4;
            }
            I::Cdq => {
                self.regs[Gpr::Edx.idx()] = ((self.regs[Gpr::Eax.idx()] as i64) >> 63) as u64;
            }
            I::Div {
                signed,
                divisor,
                trapping,
                norm,
            } => {
                let d = self.regs[divisor.idx()];
                let a = self.regs[Gpr::Eax.idx()];
                if d == 0 {
                    if *trapping {
                        return Err(TrapKind::DivideByZero);
                    }
                    self.regs[Gpr::Eax.idx()] = 0;
                    self.regs[Gpr::Edx.idx()] = 0;
                } else if *signed {
                    let (q, r) = ((a as i64).wrapping_div(d as i64), (a as i64).wrapping_rem(d as i64));
                    self.regs[Gpr::Eax.idx()] = norm.apply(q as u64);
                    self.regs[Gpr::Edx.idx()] = norm.apply(r as u64);
                } else {
                    self.regs[Gpr::Eax.idx()] = norm.apply(a / d);
                    self.regs[Gpr::Edx.idx()] = norm.apply(a % d);
                }
                cycles = 20;
            }
            I::CmpRR(a, b) => {
                self.flags = Flags {
                    lhs: self.regs[a.idx()],
                    rhs: self.regs[b.idx()],
                    ..Flags::default()
                };
            }
            I::CmpRI(a, v) => {
                self.flags = Flags {
                    lhs: self.regs[a.idx()],
                    rhs: *v as u64,
                    ..Flags::default()
                };
            }
            I::CmpRM(a, mem) => {
                let addr = self.addr(*mem);
                let v = self.mem.load(addr, Width::B8)?;
                self.flags = Flags {
                    lhs: self.regs[a.idx()],
                    rhs: v,
                    ..Flags::default()
                };
                self.stats.loads += 1;
                cycles = 2;
            }
            I::Setcc(c, d) => {
                self.regs[d.idx()] = u64::from(self.cond(*c));
            }
            I::Jmp(t) => {
                next_pc = *t;
                self.stats.taken_branches += 1;
            }
            I::Jcc(c, t) => {
                if self.cond(*c) {
                    next_pc = *t;
                    self.stats.taken_branches += 1;
                }
            }
            I::CallFn { func, unwind } => {
                self.stats.calls += 1;
                cycles = 2;
                if !program.is_installed(*func) {
                    return Ok(Some(Exit::NeedFunction(*func)));
                }
                self.frames.push(Frame {
                    func: self.cur_func,
                    ret_pc: next_pc,
                    saved_sp: self.regs[Gpr::Esp.idx()],
                    unwind: *unwind,
                    saved_regs: self.regs,
                    saved_fregs: self.fregs,
                });
                self.cur_func = *func;
                self.pc = 0;
                self.stats.cycles += cycles;
                return Ok(None);
            }
            I::CallIndirect { target, unwind } => {
                let v = self.regs[target.idx()];
                if v & FUNC_TAG == 0 {
                    return Err(TrapKind::BadFunctionPointer);
                }
                let func = (v & !FUNC_TAG) as u32;
                self.stats.calls += 1;
                cycles = 3;
                if !program.is_installed(func) {
                    return Ok(Some(Exit::NeedFunction(func)));
                }
                self.frames.push(Frame {
                    func: self.cur_func,
                    ret_pc: next_pc,
                    saved_sp: self.regs[Gpr::Esp.idx()],
                    unwind: *unwind,
                    saved_regs: self.regs,
                    saved_fregs: self.fregs,
                });
                self.cur_func = func;
                self.pc = 0;
                self.stats.cycles += cycles;
                return Ok(None);
            }
            I::CallIntrinsic { which, nargs } => {
                self.stats.calls += 1;
                let sp = self.regs[Gpr::Esp.idx()];
                let mut args = Vec::with_capacity(*nargs as usize);
                for i in 0..*nargs {
                    args.push(self.mem.load(sp + 8 * u64::from(i), Width::B8)?);
                }
                self.pending_intrinsic = true;
                return Ok(Some(Exit::Intrinsic {
                    which: *which,
                    args,
                }));
            }
            I::Ret => {
                self.stats.cycles += 2;
                return Ok(self.do_ret());
            }
            I::Unwind => loop {
                match self.frames.pop() {
                    None => return Err(TrapKind::UnhandledUnwind),
                    Some(f) => {
                        if let Some(pad) = f.unwind {
                            self.cur_func = f.func;
                            self.pc = pad;
                            self.regs = f.saved_regs;
                            self.fregs = f.saved_fregs;
                            self.regs[Gpr::Esp.idx()] = f.saved_sp;
                            self.stats.cycles += 2;
                            return Ok(None);
                        }
                    }
                }
            },
            I::Push(r) => {
                self.push(self.regs[r.idx()])?;
                self.stats.stores += 1;
                cycles = 2;
            }
            I::Pop(r) => {
                let v = self.pop()?;
                self.regs[r.idx()] = v;
                self.stats.loads += 1;
                cycles = 2;
            }
            I::FLoad { dst, mem, is32 } => {
                let a = self.addr(*mem);
                let v = if *is32 {
                    self.mem.load(a, Width::B4)?
                } else {
                    self.mem.load(a, Width::B8)?
                };
                self.fregs[dst.0 as usize] = v;
                self.stats.loads += 1;
                cycles = 2;
            }
            I::FStore { src, mem, is32 } => {
                let a = self.addr(*mem);
                let v = self.fregs[src.0 as usize];
                if *is32 {
                    self.mem.store(a, v & 0xFFFF_FFFF, Width::B4)?;
                } else {
                    self.mem.store(a, v, Width::B8)?;
                }
                self.stats.stores += 1;
                cycles = 2;
            }
            I::FMovRR(d, s) => self.fregs[d.0 as usize] = self.fregs[s.0 as usize],
            I::FAlu(op, d, s, is32) => {
                let a = fbits_to_f64(self.fregs[d.0 as usize], *is32);
                let b = fbits_to_f64(self.fregs[s.0 as usize], *is32);
                let r = match op {
                    FpOp::Add => a + b,
                    FpOp::Sub => a - b,
                    FpOp::Mul => a * b,
                    FpOp::Div => a / b,
                };
                self.fregs[d.0 as usize] = f64_to_fbits(r, *is32);
                cycles = 3;
            }
            I::FCmp(a, b, is32) => {
                let x = fbits_to_f64(self.fregs[a.0 as usize], *is32);
                let y = fbits_to_f64(self.fregs[b.0 as usize], *is32);
                self.flags = Flags {
                    float: true,
                    unordered: x.is_nan() || y.is_nan(),
                    flhs: x,
                    frhs: y,
                    ..Flags::default()
                };
                cycles = 2;
            }
            I::CvtIF {
                dst,
                src,
                to32,
                signed,
            } => {
                let v = self.regs[src.idx()];
                let f = if *signed { v as i64 as f64 } else { v as f64 };
                self.fregs[dst.0 as usize] = f64_to_fbits(f, *to32);
                cycles = 3;
            }
            I::CvtFI {
                dst,
                src,
                from32,
                signed,
            } => {
                let f = fbits_to_f64(self.fregs[src.0 as usize], *from32);
                self.regs[dst.idx()] = if *signed {
                    (f as i64) as u64
                } else {
                    f as u64
                };
                cycles = 3;
            }
            I::CvtFF { dst, src, to32 } => {
                let f = fbits_to_f64(self.fregs[src.0 as usize], !*to32);
                self.fregs[dst.0 as usize] = f64_to_fbits(f, *to32);
                cycles = 2;
            }
            I::MovGF(d, s) => self.regs[d.idx()] = self.fregs[s.0 as usize],
            I::MovFG(d, s) => self.fregs[d.0 as usize] = self.regs[s.idx()],
            I::SignExtend(r, w) => {
                let bits = w.bytes() as u32 * 8;
                self.regs[r.idx()] =
                    llva_core::eval::sign_extend(self.regs[r.idx()], bits) as u64;
            }
            I::ZeroExtend(r, w) => {
                let bits = w.bytes() as u32 * 8;
                self.regs[r.idx()] = llva_core::eval::truncate(self.regs[r.idx()], bits);
            }
        }
        self.pc = next_pc;
        self.stats.cycles += cycles;
        Ok(None)
    }
}

fn alu(op: AluOp, a: u64, b: u64) -> u64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Shl => a.wrapping_shl((b & 63) as u32),
        AluOp::Shr => a.wrapping_shr((b & 63) as u32),
        AluOp::Sar => ((a as i64).wrapping_shr((b & 63) as u32)) as u64,
    }
}

fn fbits_to_f64(bits: u64, is32: bool) -> f64 {
    if is32 {
        f32::from_bits(bits as u32) as f64
    } else {
        f64::from_bits(bits)
    }
}

fn f64_to_fbits(v: f64, is32: bool) -> u64 {
    if is32 {
        (v as f32).to_bits() as u64
    } else {
        v.to_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llva_core::layout::Endianness;

    fn machine() -> X86Machine {
        X86Machine::new(Memory::new(1 << 20, 0x2000, Endianness::Little))
    }

    #[test]
    fn arithmetic_and_halt() {
        use X86Inst as I;
        let mut program = X86Program::new(1, vec![]);
        program.install(
            0,
            vec![
                I::MovRI(Gpr::Eax, 40),
                I::MovRI(Gpr::Ecx, 2),
                I::AluRR(AluOp::Add, Gpr::Eax, Gpr::Ecx, Norm::None),
                I::Ret,
            ],
        );
        let mut m = machine();
        m.call_entry(0, &[]).unwrap();
        assert_eq!(m.run(&program, 1000), Exit::Halt(42));
        assert_eq!(m.stats().instructions, 4);
    }

    #[test]
    fn conditional_branch_loop() {
        use X86Inst as I;
        // sum 1..=5 : ECX counter, EAX acc
        let mut program = X86Program::new(1, vec![]);
        program.install(
            0,
            vec![
                I::MovRI(Gpr::Eax, 0),
                I::MovRI(Gpr::Ecx, 5),
                // loop:
                I::AluRR(AluOp::Add, Gpr::Eax, Gpr::Ecx, Norm::None), // 2
                I::AluRI(AluOp::Sub, Gpr::Ecx, 1, Norm::None),
                I::CmpRI(Gpr::Ecx, 0),
                I::Jcc(Cond::G, 2),
                I::Ret,
            ],
        );
        let mut m = machine();
        m.call_entry(0, &[]).unwrap();
        assert_eq!(m.run(&program, 1000), Exit::Halt(15));
    }

    #[test]
    fn call_and_stack_args() {
        use X86Inst as I;
        let mut program = X86Program::new(2, vec![]);
        // callee: eax = arg0 * 2 ; args at [esp+0] (no saved ret addr in mem)
        program.install(
            1,
            vec![
                I::Load {
                    dst: Gpr::Eax,
                    mem: MemOp {
                        base: Gpr::Esp,
                        disp: 0,
                    },
                    width: Width::B8,
                    signed: false,
                },
                I::AluRI(AluOp::Shl, Gpr::Eax, 1, Norm::None),
                I::Ret,
            ],
        );
        // main: push 21; call 1; add esp,8; ret
        program.install(
            0,
            vec![
                I::MovRI(Gpr::Ecx, 21),
                I::Push(Gpr::Ecx),
                I::CallFn {
                    func: 1,
                    unwind: None,
                },
                I::AluRI(AluOp::Add, Gpr::Esp, 8, Norm::None),
                I::Ret,
            ],
        );
        let mut m = machine();
        m.call_entry(0, &[]).unwrap();
        assert_eq!(m.run(&program, 1000), Exit::Halt(42));
    }

    #[test]
    fn need_function_then_resume() {
        use X86Inst as I;
        let mut program = X86Program::new(2, vec![]);
        program.install(
            0,
            vec![
                I::CallFn {
                    func: 1,
                    unwind: None,
                },
                I::Ret,
            ],
        );
        let mut m = machine();
        m.call_entry(0, &[]).unwrap();
        assert_eq!(m.run(&program, 1000), Exit::NeedFunction(1));
        // engine translates and installs, then resumes
        program.install(1, vec![I::MovRI(Gpr::Eax, 7), I::Ret]);
        assert_eq!(m.run(&program, 1000), Exit::Halt(7));
    }

    #[test]
    fn divide_by_zero_traps_precisely() {
        use X86Inst as I;
        let mut program = X86Program::new(1, vec![]);
        program.install(
            0,
            vec![
                I::MovRI(Gpr::Eax, 10),
                I::MovRI(Gpr::Ecx, 0),
                I::Cdq,
                I::Div {
                    signed: true,
                    divisor: Gpr::Ecx,
                    trapping: true,
                    norm: Norm::None,
                },
                I::Ret,
            ],
        );
        let mut m = machine();
        m.call_entry(0, &[]).unwrap();
        match m.run(&program, 1000) {
            Exit::Trapped(t) => {
                assert_eq!(t.kind, TrapKind::DivideByZero);
                assert_eq!(t.pc, 3, "precise: trap names the div instruction");
            }
            other => panic!("expected trap, got {other:?}"),
        }
    }

    #[test]
    fn nontrapping_div_yields_zero() {
        use X86Inst as I;
        let mut program = X86Program::new(1, vec![]);
        program.install(
            0,
            vec![
                I::MovRI(Gpr::Eax, 10),
                I::MovRI(Gpr::Ecx, 0),
                I::Div {
                    signed: true,
                    divisor: Gpr::Ecx,
                    trapping: false,
                    norm: Norm::None,
                },
                I::Ret,
            ],
        );
        let mut m = machine();
        m.call_entry(0, &[]).unwrap();
        assert_eq!(m.run(&program, 1000), Exit::Halt(0));
    }

    #[test]
    fn null_load_traps() {
        use X86Inst as I;
        let mut program = X86Program::new(1, vec![]);
        program.install(
            0,
            vec![
                I::MovRI(Gpr::Eax, 0),
                I::Load {
                    dst: Gpr::Ecx,
                    mem: MemOp {
                        base: Gpr::Eax,
                        disp: 0,
                    },
                    width: Width::B8,
                    signed: false,
                },
                I::Ret,
            ],
        );
        let mut m = machine();
        m.call_entry(0, &[]).unwrap();
        match m.run(&program, 1000) {
            Exit::Trapped(t) => assert_eq!(t.kind, TrapKind::MemoryFault),
            other => panic!("expected trap, got {other:?}"),
        }
    }

    #[test]
    fn unwind_to_invoke_pad() {
        use X86Inst as I;
        let mut program = X86Program::new(2, vec![]);
        // callee: unwind immediately
        program.install(1, vec![I::Unwind]);
        // main: call with unwind pad at 3; pad sets eax=99
        program.install(
            0,
            vec![
                I::CallFn {
                    func: 1,
                    unwind: Some(3),
                },
                I::MovRI(Gpr::Eax, 1), // normal path (skipped)
                I::Ret,
                I::MovRI(Gpr::Eax, 99), // pad
                I::Ret,
            ],
        );
        let mut m = machine();
        m.call_entry(0, &[]).unwrap();
        assert_eq!(m.run(&program, 1000), Exit::Halt(99));
    }

    #[test]
    fn unhandled_unwind_traps() {
        use X86Inst as I;
        let mut program = X86Program::new(1, vec![]);
        program.install(0, vec![I::Unwind]);
        let mut m = machine();
        m.call_entry(0, &[]).unwrap();
        match m.run(&program, 1000) {
            Exit::Trapped(t) => assert_eq!(t.kind, TrapKind::UnhandledUnwind),
            other => panic!("expected trap, got {other:?}"),
        }
    }

    #[test]
    fn intrinsic_roundtrip() {
        use X86Inst as I;
        let mut program = X86Program::new(1, vec![]);
        program.install(
            0,
            vec![
                I::MovRI(Gpr::Ecx, 1234),
                I::Push(Gpr::Ecx),
                I::CallIntrinsic {
                    which: Intrinsic::HeapAlloc,
                    nargs: 1,
                },
                I::AluRI(AluOp::Add, Gpr::Esp, 8, Norm::None),
                I::Ret,
            ],
        );
        let mut m = machine();
        m.call_entry(0, &[]).unwrap();
        match m.run(&program, 1000) {
            Exit::Intrinsic { which, args } => {
                assert_eq!(which, Intrinsic::HeapAlloc);
                assert_eq!(args, vec![1234]);
            }
            other => panic!("expected intrinsic exit, got {other:?}"),
        }
        m.finish_intrinsic(0x8000);
        assert_eq!(m.run(&program, 1000), Exit::Halt(0x8000));
    }

    #[test]
    fn float_pipeline() {
        use X86Inst as I;
        let mut program = X86Program::new(1, vec![]);
        // f0 = 1.5; f1 = 2.5; f0 += f1; eax = bits(f0)
        program.install(
            0,
            vec![
                I::MovRI(Gpr::Eax, 1.5f64.to_bits() as i64),
                I::MovFG(Fpr(0), Gpr::Eax),
                I::MovRI(Gpr::Eax, 2.5f64.to_bits() as i64),
                I::MovFG(Fpr(1), Gpr::Eax),
                I::FAlu(FpOp::Add, Fpr(0), Fpr(1), false),
                I::MovGF(Gpr::Eax, Fpr(0)),
                I::Ret,
            ],
        );
        let mut m = machine();
        m.call_entry(0, &[]).unwrap();
        assert_eq!(m.run(&program, 1000), Exit::Halt(4.0f64.to_bits()));
    }

    #[test]
    fn fuel_exhaustion() {
        use X86Inst as I;
        let mut program = X86Program::new(1, vec![]);
        program.install(0, vec![I::Jmp(0)]);
        let mut m = machine();
        m.call_entry(0, &[]).unwrap();
        assert_eq!(m.run(&program, 100), Exit::OutOfFuel);
    }

    #[test]
    fn native_size_is_plausible() {
        use X86Inst as I;
        assert_eq!(I::Ret.native_size(), 1);
        assert_eq!(I::MovRI(Gpr::Eax, 1).native_size(), 5);
        assert_eq!(I::MovRI(Gpr::Eax, i64::MAX).native_size(), 10);
        assert_eq!(I::AluRR(AluOp::Add, Gpr::Eax, Gpr::Ecx, Norm::None).native_size(), 2);
    }
}
