//! The RV64-like implementation ISA and its simulated processor.
//!
//! The third I-ISA of the reproduction: a little-endian, 3-address RISC
//! with 32 integer registers (`x0` hard-wired to zero), 12-bit
//! immediates (one bit narrower than SPARC's — larger constants need
//! `lui`/`addi` pairs), fixed 4-byte instructions, and **no condition
//! codes**: comparisons either fuse into compare-and-branch
//! instructions (`beq`/`bne`/`blt`/…) or materialize booleans with
//! `slt`/`sltu`, exactly the RISC-V model. This is the structural
//! divergence from the SPARC back end that makes the 3-way conformance
//! vote interesting — a flag-model bug in one back end cannot be
//! mirrored here.
//!
//! Deviations from real RV64, documented in DESIGN.md: divide-by-zero
//! traps when the `trapping` flag is set (real RV64M returns all-ones;
//! the flag stands in for the explicit zero-check branch a faithful
//! translation would emit), loads/stores keep their immediate-only
//! 12-bit offsets but ALU ops accept an immediate second operand for
//! every opcode, and return addresses live in a simulator-internal
//! frame stack (no architectural `ra` linkage).

use crate::common::{Exit, Sym, Trap, TrapKind, Width};
use crate::memory::Memory;
use llva_core::intrinsics::Intrinsic;
use std::sync::Arc;

/// An integer register number (0–31; register 0 always reads zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

/// The hard-wired zero register `x0`/`zero`.
pub const X0: Reg = Reg(0);
/// The stack pointer `x2`/`sp`.
pub const SP: Reg = Reg(2);
/// The frame pointer `x8`/`s0`.
pub const FP: Reg = Reg(8);
/// First argument / return-value register `x10`/`a0`.
pub const A0: Reg = Reg(10);
/// Scratch register `x5`/`t0`.
pub const T0: Reg = Reg(5);
/// Scratch register `x6`/`t1`.
pub const T1: Reg = Reg(6);
/// Scratch register `x7`/`t2` (used for address materialization).
pub const T2: Reg = Reg(7);

/// A float register number (0–15, each 64 bits wide).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FReg(pub u8);

/// Second ALU operand: register or 12-bit immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegOrImm {
    /// Register operand.
    Reg(Reg),
    /// Sign-extended 12-bit immediate.
    Imm(i16),
}

/// Whether `v` fits a signed 12-bit immediate field.
pub fn fits_imm12(v: i64) -> bool {
    (-2048..=2047).contains(&v)
}

/// Integer ALU operations (RV64IM plus `slt`/`sltu` as ordinary ops).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Signed division.
    Sdiv,
    /// Unsigned division.
    Udiv,
    /// Signed remainder.
    Srem,
    /// Unsigned remainder.
    Urem,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Shift left.
    Sll,
    /// Logical shift right.
    Srl,
    /// Arithmetic shift right.
    Sra,
    /// Set if signed less-than (rd := rs1 < rhs).
    Slt,
    /// Set if unsigned less-than.
    Sltu,
}

/// Compare-and-branch conditions (the six real RV branch opcodes;
/// greater-than forms come from swapping operands).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BrCond {
    /// `beq` — equal.
    Eq,
    /// `bne` — not equal.
    Ne,
    /// `blt` — signed less.
    Lt,
    /// `bge` — signed greater-or-equal.
    Ge,
    /// `bltu` — unsigned below.
    Ltu,
    /// `bgeu` — unsigned above-or-equal.
    Geu,
}

/// Floating-point ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FpOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

/// Float comparisons writing 0/1 into an integer register (`feq`,
/// `flt`, `fle`; all false on unordered operands, as in real RISC-V).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FSetOp {
    /// Equal.
    Feq,
    /// Less-than.
    Flt,
    /// Less-or-equal.
    Fle,
}

/// One RV64-like instruction (4 bytes each; `MovSym` is the
/// `auipc`+`addi` relocation pair and counts as two).
#[derive(Debug, Clone, PartialEq)]
pub enum RiscvInst {
    /// `lui imm20, rd` — rd := sign-extend32(imm20 << 12).
    Lui {
        /// The 20-bit immediate.
        imm20: u32,
        /// Destination.
        rd: Reg,
    },
    /// Three-address ALU operation.
    Alu {
        /// Operation.
        op: AluOp,
        /// First source.
        rs1: Reg,
        /// Second source (register or imm12).
        rhs: RegOrImm,
        /// Destination.
        rd: Reg,
        /// Division by zero traps when set (clear for translations of
        /// `[noexc]` LLVA `div`, §3.3).
        trapping: bool,
    },
    /// Integer load (immediate-only 12-bit offset, as in real RV).
    Ld {
        /// Destination.
        rd: Reg,
        /// Base register.
        rs1: Reg,
        /// Signed 12-bit offset.
        off: i16,
        /// Width.
        width: Width,
        /// Sign-extend.
        signed: bool,
    },
    /// Integer store.
    St {
        /// Source.
        rs: Reg,
        /// Base.
        rs1: Reg,
        /// Signed 12-bit offset.
        off: i16,
        /// Width.
        width: Width,
    },
    /// Float load.
    LdF {
        /// Destination.
        fd: FReg,
        /// Base.
        rs1: Reg,
        /// Signed 12-bit offset.
        off: i16,
        /// 32-bit vs 64-bit.
        is32: bool,
    },
    /// Float store.
    StF {
        /// Source.
        fs: FReg,
        /// Base.
        rs1: Reg,
        /// Signed 12-bit offset.
        off: i16,
        /// 32-bit vs 64-bit.
        is32: bool,
    },
    /// Compare-and-branch — no condition codes anywhere in this ISA.
    Br {
        /// Condition.
        cond: BrCond,
        /// First compared register.
        rs1: Reg,
        /// Second compared register.
        rs2: Reg,
        /// Target instruction index.
        target: u32,
    },
    /// Unconditional jump (`jal x0`).
    J {
        /// Target instruction index.
        target: u32,
    },
    /// Direct call.
    Call {
        /// Callee function index.
        func: u32,
        /// Optional unwind landing pad.
        unwind: Option<u32>,
    },
    /// Indirect call through a register (`jalr`).
    CallIndirect {
        /// Register with the tagged function value.
        rs: Reg,
        /// Optional unwind landing pad.
        unwind: Option<u32>,
    },
    /// Intrinsic call (§3.5); arguments in `a0`–`a7`.
    CallIntrinsic {
        /// Which intrinsic.
        which: Intrinsic,
        /// Number of register arguments.
        nargs: u8,
    },
    /// Return to the caller.
    Ret,
    /// LLVA `unwind`.
    Unwind,
    /// Relocated symbol address (assembles to `auipc`+`addi`, counted
    /// as 2 instructions / 8 bytes).
    MovSym {
        /// Destination.
        rd: Reg,
        /// The symbol.
        sym: Sym,
    },
    /// Float register move (`fsgnj.d fd, fs, fs`).
    FMov(FReg, FReg),
    /// Float ALU: `fd := fs1 ⊕ fs2`.
    FAlu {
        /// Operation.
        op: FpOp,
        /// First source.
        fs1: FReg,
        /// Second source.
        fs2: FReg,
        /// Destination.
        fd: FReg,
        /// 32-bit vs 64-bit.
        is32: bool,
    },
    /// Float compare writing 0/1 into an integer register.
    FSet {
        /// Comparison.
        op: FSetOp,
        /// Integer destination.
        rd: Reg,
        /// First source.
        fs1: FReg,
        /// Second source.
        fs2: FReg,
        /// 32-bit vs 64-bit.
        is32: bool,
    },
    /// Integer → float conversion.
    CvtIF {
        /// Destination float register.
        fd: FReg,
        /// Source integer register.
        rs: Reg,
        /// Produce f32.
        to32: bool,
        /// Source is signed.
        signed: bool,
    },
    /// Float → integer conversion (truncating).
    CvtFI {
        /// Destination integer register.
        rd: Reg,
        /// Source float register.
        fs: FReg,
        /// Source is f32.
        from32: bool,
        /// Produce signed.
        signed: bool,
    },
    /// f32 ↔ f64 conversion.
    CvtFF {
        /// Destination.
        fd: FReg,
        /// Source.
        fs: FReg,
        /// Destination is f32.
        to32: bool,
    },
    /// Move float bits into an integer register (`fmv.x.d`).
    MovGF(Reg, FReg),
    /// Move integer bits into a float register (`fmv.d.x`).
    MovFG(FReg, Reg),
}

impl RiscvInst {
    /// How many real RV instructions this represents (MovSym = 2).
    pub fn weight(&self) -> u32 {
        match self {
            RiscvInst::MovSym { .. } => 2,
            _ => 1,
        }
    }

    /// Encoded size in bytes (4 per real instruction).
    pub fn native_size(&self) -> u32 {
        self.weight() * 4
    }
}

/// A translated RISC-V program.
#[derive(Debug, Clone, Default)]
pub struct RiscvProgram {
    functions: Vec<Option<Arc<Vec<RiscvInst>>>>,
    global_addrs: Vec<u64>,
}

impl RiscvProgram {
    /// Creates an empty program.
    pub fn new(num_functions: usize, global_addrs: Vec<u64>) -> RiscvProgram {
        RiscvProgram {
            functions: vec![None; num_functions],
            global_addrs,
        }
    }

    /// Grows the translation table to at least `n` slots (self-
    /// extending code adds functions after program creation, §3.4).
    pub fn ensure_slots(&mut self, n: usize) {
        if self.functions.len() < n {
            self.functions.resize(n, None);
        }
    }

    /// Installs translated code for a function.
    pub fn install(&mut self, idx: u32, code: Vec<RiscvInst>) {
        self.functions[idx as usize] = Some(Arc::new(code));
    }

    /// Removes installed code (SMC invalidation).
    pub fn invalidate(&mut self, idx: u32) {
        self.functions[idx as usize] = None;
    }

    /// Whether function `idx` has installed code.
    pub fn is_installed(&self, idx: u32) -> bool {
        self.functions
            .get(idx as usize)
            .map(Option::is_some)
            .unwrap_or(false)
    }

    /// Installed code for `idx`.
    pub fn code(&self, idx: u32) -> Option<&Arc<Vec<RiscvInst>>> {
        self.functions.get(idx as usize).and_then(Option::as_ref)
    }

    /// Relocated address of global `idx`.
    pub fn global_addr(&self, idx: u32) -> u64 {
        self.global_addrs[idx as usize]
    }

    /// Total native instruction count (weighted, Table 2 style).
    pub fn total_insts(&self) -> usize {
        self.functions
            .iter()
            .flatten()
            .flat_map(|c| c.iter())
            .map(|i| i.weight() as usize)
            .sum()
    }

    /// Total native code bytes.
    pub fn total_bytes(&self) -> usize {
        self.total_insts() * 4
    }
}

/// Tagged function value helper (same scheme as the x86 machine).
pub use crate::x86::{function_value, FUNC_TAG};

#[derive(Debug, Clone, Copy)]
struct Frame {
    func: u32,
    ret_pc: u32,
    saved_sp: u64,
    unwind: Option<u32>,
    // The caller's register file at the call site — what a real
    // unwinder reconstructs from unwind tables. Restored when an
    // `unwind` lands at this call's landing pad, so the frame pointer
    // and values homed in `s`-registers survive the non-local exit.
    saved_regs: [u64; 32],
    saved_fregs: [u64; 16],
}

/// The simulated RV64-like processor.
#[derive(Debug)]
pub struct RiscvMachine {
    /// The processor's memory.
    pub mem: Memory,
    regs: [u64; 32],
    fregs: [u64; 16],
    frames: Vec<Frame>,
    cur_func: u32,
    pc: u32,
    stats: crate::common::ExecStats,
    pending_intrinsic: bool,
}

impl RiscvMachine {
    /// Creates a machine over `mem`.
    pub fn new(mem: Memory) -> RiscvMachine {
        let sp = mem.initial_sp();
        let mut m = RiscvMachine {
            mem,
            regs: [0; 32],
            fregs: [0; 16],
            frames: Vec::new(),
            cur_func: 0,
            pc: 0,
            stats: crate::common::ExecStats::default(),
            pending_intrinsic: false,
        };
        m.regs[SP.0 as usize] = sp;
        m
    }

    /// Execution statistics.
    pub fn stats(&self) -> crate::common::ExecStats {
        self.stats
    }

    /// Reads a register (`x0` reads zero).
    pub fn reg(&self, r: Reg) -> u64 {
        if r.0 == 0 {
            0
        } else {
            self.regs[r.0 as usize]
        }
    }

    /// Writes a register (writes to `x0` are discarded).
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        if r.0 != 0 {
            self.regs[r.0 as usize] = v;
        }
    }

    /// Reads a float register's raw bits.
    pub fn freg(&self, r: FReg) -> u64 {
        self.fregs[r.0 as usize]
    }

    /// Positions the machine at the entry of `func` with register
    /// arguments in `a0`–`a7` (extras on the stack).
    pub fn call_entry(&mut self, func: u32, args: &[u64]) -> Result<(), Trap> {
        for (i, &a) in args.iter().take(8).enumerate() {
            self.set_reg(Reg(10 + i as u8), a);
        }
        if args.len() > 8 {
            let extra = &args[8..];
            let mut sp = self.reg(SP);
            sp -= (extra.len() as u64) * 8;
            for (i, &a) in extra.iter().enumerate() {
                self.mem
                    .store(sp + 8 * i as u64, a, Width::B8)
                    .map_err(|k| Trap {
                        kind: k,
                        function: func,
                        pc: 0,
                    })?;
            }
            self.set_reg(SP, sp);
        }
        self.cur_func = func;
        self.pc = 0;
        self.frames.clear();
        Ok(())
    }

    /// The (function, pc) the machine is currently positioned at.
    pub fn current_location(&self) -> (u32, u32) {
        (self.cur_func, self.pc)
    }

    /// Current call depth.
    pub fn call_depth(&self) -> usize {
        self.frames.len() + 1
    }

    /// Function executing at `depth` (0 = innermost).
    pub fn frame_function(&self, depth: usize) -> Option<u32> {
        if depth == 0 {
            return Some(self.cur_func);
        }
        self.frames.iter().rev().nth(depth - 1).map(|f| f.func)
    }

    fn trap_here(&self, kind: TrapKind) -> Trap {
        Trap {
            kind,
            function: self.cur_func,
            pc: self.pc,
        }
    }

    fn operand(&self, roi: RegOrImm) -> u64 {
        match roi {
            RegOrImm::Reg(r) => self.reg(r),
            RegOrImm::Imm(v) => v as i64 as u64,
        }
    }

    fn br_cond(&self, c: BrCond, rs1: Reg, rs2: Reg) -> bool {
        let (a, b) = (self.reg(rs1), self.reg(rs2));
        match c {
            BrCond::Eq => a == b,
            BrCond::Ne => a != b,
            BrCond::Lt => (a as i64) < (b as i64),
            BrCond::Ge => (a as i64) >= (b as i64),
            BrCond::Ltu => a < b,
            BrCond::Geu => a >= b,
        }
    }

    /// Completes a pending intrinsic call; result goes to `a0`.
    pub fn finish_intrinsic(&mut self, ret: u64) {
        debug_assert!(self.pending_intrinsic);
        self.set_reg(A0, ret);
        self.pending_intrinsic = false;
        self.pc += 1;
    }

    /// Runs until an [`Exit`], executing at most `fuel` instructions.
    pub fn run(&mut self, program: &RiscvProgram, fuel: u64) -> Exit {
        let mut remaining = fuel;
        loop {
            if remaining == 0 {
                return Exit::OutOfFuel;
            }
            remaining -= 1;
            let Some(code) = program.code(self.cur_func) else {
                return Exit::NeedFunction(self.cur_func);
            };
            let code = Arc::clone(code);
            let Some(inst) = code.get(self.pc as usize) else {
                match self.do_ret() {
                    Some(exit) => return exit,
                    None => continue,
                }
            };
            self.stats.instructions += u64::from(inst.weight());
            match self.step(inst, program) {
                Ok(None) => {}
                Ok(Some(exit)) => return exit,
                Err(kind) => return Exit::Trapped(self.trap_here(kind)),
            }
        }
    }

    fn do_ret(&mut self) -> Option<Exit> {
        match self.frames.pop() {
            None => Some(Exit::Halt(self.reg(A0))),
            Some(f) => {
                self.cur_func = f.func;
                self.pc = f.ret_pc;
                None
            }
        }
    }

    #[allow(clippy::too_many_lines)]
    fn step(&mut self, inst: &RiscvInst, program: &RiscvProgram) -> Result<Option<Exit>, TrapKind> {
        use RiscvInst as I;
        let mut next_pc = self.pc + 1;
        let mut cycles = 1u64;
        match inst {
            I::Lui { imm20, rd } => {
                // lui sign-extends bit 31 on RV64
                self.set_reg(*rd, ((*imm20 << 12) as i32) as i64 as u64);
            }
            I::Alu {
                op,
                rs1,
                rhs,
                rd,
                trapping,
            } => {
                let a = self.reg(*rs1);
                let b = self.operand(*rhs);
                let v = match op {
                    AluOp::Add => a.wrapping_add(b),
                    AluOp::Sub => a.wrapping_sub(b),
                    AluOp::Mul => {
                        cycles = 3;
                        a.wrapping_mul(b)
                    }
                    AluOp::Sdiv | AluOp::Udiv | AluOp::Srem | AluOp::Urem => {
                        cycles = 20;
                        if b == 0 {
                            if *trapping {
                                return Err(TrapKind::DivideByZero);
                            }
                            0
                        } else {
                            match op {
                                AluOp::Sdiv => (a as i64).wrapping_div(b as i64) as u64,
                                AluOp::Udiv => a / b,
                                AluOp::Srem => (a as i64).wrapping_rem(b as i64) as u64,
                                AluOp::Urem => a % b,
                                _ => unreachable!(),
                            }
                        }
                    }
                    AluOp::And => a & b,
                    AluOp::Or => a | b,
                    AluOp::Xor => a ^ b,
                    AluOp::Sll => a.wrapping_shl((b & 63) as u32),
                    AluOp::Srl => a.wrapping_shr((b & 63) as u32),
                    AluOp::Sra => ((a as i64).wrapping_shr((b & 63) as u32)) as u64,
                    AluOp::Slt => u64::from((a as i64) < (b as i64)),
                    AluOp::Sltu => u64::from(a < b),
                };
                self.set_reg(*rd, v);
            }
            I::Ld {
                rd,
                rs1,
                off,
                width,
                signed,
            } => {
                let a = self.reg(*rs1).wrapping_add(*off as i64 as u64);
                let v = if *signed {
                    self.mem.load_signed(a, *width)?
                } else {
                    self.mem.load(a, *width)?
                };
                self.set_reg(*rd, v);
                self.stats.loads += 1;
                cycles = 2;
            }
            I::St {
                rs,
                rs1,
                off,
                width,
            } => {
                let a = self.reg(*rs1).wrapping_add(*off as i64 as u64);
                self.mem.store(a, self.reg(*rs), *width)?;
                self.stats.stores += 1;
                cycles = 2;
            }
            I::LdF { fd, rs1, off, is32 } => {
                let a = self.reg(*rs1).wrapping_add(*off as i64 as u64);
                let v = if *is32 {
                    self.mem.load(a, Width::B4)?
                } else {
                    self.mem.load(a, Width::B8)?
                };
                self.fregs[fd.0 as usize] = v;
                self.stats.loads += 1;
                cycles = 2;
            }
            I::StF { fs, rs1, off, is32 } => {
                let a = self.reg(*rs1).wrapping_add(*off as i64 as u64);
                let v = self.fregs[fs.0 as usize];
                if *is32 {
                    self.mem.store(a, v & 0xFFFF_FFFF, Width::B4)?;
                } else {
                    self.mem.store(a, v, Width::B8)?;
                }
                self.stats.stores += 1;
                cycles = 2;
            }
            I::Br {
                cond,
                rs1,
                rs2,
                target,
            } => {
                if self.br_cond(*cond, *rs1, *rs2) {
                    next_pc = *target;
                    self.stats.taken_branches += 1;
                }
            }
            I::J { target } => {
                next_pc = *target;
                self.stats.taken_branches += 1;
            }
            I::Call { func, unwind } => {
                self.stats.calls += 1;
                cycles = 2;
                if !program.is_installed(*func) {
                    return Ok(Some(Exit::NeedFunction(*func)));
                }
                self.frames.push(Frame {
                    func: self.cur_func,
                    ret_pc: next_pc,
                    saved_sp: self.reg(SP),
                    unwind: *unwind,
                    saved_regs: self.regs,
                    saved_fregs: self.fregs,
                });
                self.cur_func = *func;
                self.pc = 0;
                self.stats.cycles += cycles;
                return Ok(None);
            }
            I::CallIndirect { rs, unwind } => {
                let v = self.reg(*rs);
                if v & FUNC_TAG == 0 {
                    return Err(TrapKind::BadFunctionPointer);
                }
                let func = (v & !FUNC_TAG) as u32;
                self.stats.calls += 1;
                cycles = 3;
                if !program.is_installed(func) {
                    return Ok(Some(Exit::NeedFunction(func)));
                }
                self.frames.push(Frame {
                    func: self.cur_func,
                    ret_pc: next_pc,
                    saved_sp: self.reg(SP),
                    unwind: *unwind,
                    saved_regs: self.regs,
                    saved_fregs: self.fregs,
                });
                self.cur_func = func;
                self.pc = 0;
                self.stats.cycles += cycles;
                return Ok(None);
            }
            I::CallIntrinsic { which, nargs } => {
                self.stats.calls += 1;
                let args: Vec<u64> = (0..*nargs).map(|i| self.reg(Reg(10 + i))).collect();
                self.pending_intrinsic = true;
                return Ok(Some(Exit::Intrinsic {
                    which: *which,
                    args,
                }));
            }
            I::Ret => {
                self.stats.cycles += 2;
                return Ok(self.do_ret());
            }
            I::Unwind => loop {
                match self.frames.pop() {
                    None => return Err(TrapKind::UnhandledUnwind),
                    Some(f) => {
                        if let Some(pad) = f.unwind {
                            self.cur_func = f.func;
                            self.pc = pad;
                            self.regs = f.saved_regs;
                            self.fregs = f.saved_fregs;
                            self.set_reg(SP, f.saved_sp);
                            self.stats.cycles += 2;
                            return Ok(None);
                        }
                    }
                }
            },
            I::MovSym { rd, sym } => {
                let v = match sym {
                    Sym::Global(g) => program.global_addr(*g),
                    Sym::Function(f) => function_value(*f),
                };
                self.set_reg(*rd, v);
                cycles = 2; // auipc + addi
            }
            I::FMov(d, s) => self.fregs[d.0 as usize] = self.fregs[s.0 as usize],
            I::FAlu {
                op,
                fs1,
                fs2,
                fd,
                is32,
            } => {
                let a = fbits(self.fregs[fs1.0 as usize], *is32);
                let b = fbits(self.fregs[fs2.0 as usize], *is32);
                let r = match op {
                    FpOp::Add => a + b,
                    FpOp::Sub => a - b,
                    FpOp::Mul => a * b,
                    FpOp::Div => a / b,
                };
                self.fregs[fd.0 as usize] = to_fbits(r, *is32);
                cycles = 3;
            }
            I::FSet {
                op,
                rd,
                fs1,
                fs2,
                is32,
            } => {
                let a = fbits(self.fregs[fs1.0 as usize], *is32);
                let b = fbits(self.fregs[fs2.0 as usize], *is32);
                // all comparisons are false on unordered operands
                let v = match op {
                    FSetOp::Feq => a == b,
                    FSetOp::Flt => a < b,
                    FSetOp::Fle => a <= b,
                };
                self.set_reg(*rd, u64::from(v));
                cycles = 2;
            }
            I::CvtIF {
                fd,
                rs,
                to32,
                signed,
            } => {
                let v = self.reg(*rs);
                let f = if *signed { v as i64 as f64 } else { v as f64 };
                self.fregs[fd.0 as usize] = to_fbits(f, *to32);
                cycles = 3;
            }
            I::CvtFI {
                rd,
                fs,
                from32,
                signed,
            } => {
                let f = fbits(self.fregs[fs.0 as usize], *from32);
                let v = if *signed { (f as i64) as u64 } else { f as u64 };
                self.set_reg(*rd, v);
                cycles = 3;
            }
            I::CvtFF { fd, fs, to32 } => {
                let f = fbits(self.fregs[fs.0 as usize], !*to32);
                self.fregs[fd.0 as usize] = to_fbits(f, *to32);
                cycles = 2;
            }
            I::MovGF(rd, fs) => self.set_reg(*rd, self.fregs[fs.0 as usize]),
            I::MovFG(fd, rs) => self.fregs[fd.0 as usize] = self.reg(*rs),
        }
        self.pc = next_pc;
        self.stats.cycles += cycles;
        Ok(None)
    }
}

fn fbits(bits: u64, is32: bool) -> f64 {
    if is32 {
        f32::from_bits(bits as u32) as f64
    } else {
        f64::from_bits(bits)
    }
}

fn to_fbits(v: f64, is32: bool) -> u64 {
    if is32 {
        (v as f32).to_bits() as u64
    } else {
        v.to_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llva_core::layout::Endianness;

    fn machine() -> RiscvMachine {
        RiscvMachine::new(Memory::new(1 << 20, 0x2000, Endianness::Little))
    }

    #[test]
    fn x0_is_always_zero() {
        let mut m = machine();
        m.set_reg(X0, 42);
        assert_eq!(m.reg(X0), 0);
    }

    #[test]
    fn lui_addi_builds_constants() {
        use RiscvInst as I;
        let mut p = RiscvProgram::new(1, vec![]);
        // build 0x12345678 into a0 via the standard li expansion:
        // lui hi20 (rounded for the sign of lo12), addi lo12
        let v = 0x1234_5678i64;
        let hi20 = (((v + 0x800) >> 12) & 0xFFFFF) as u32;
        let lo12 = (v - ((i64::from(hi20 as i32) << 12) as i32 as i64)) as i16;
        p.install(
            0,
            vec![
                I::Lui { imm20: hi20, rd: A0 },
                I::Alu {
                    op: AluOp::Add,
                    rs1: A0,
                    rhs: RegOrImm::Imm(lo12),
                    rd: A0,
                    trapping: false,
                },
                I::Ret,
            ],
        );
        let mut m = machine();
        m.call_entry(0, &[]).unwrap();
        assert_eq!(m.run(&p, 100), Exit::Halt(v as u64));
    }

    #[test]
    fn register_args_and_return() {
        use RiscvInst as I;
        let mut p = RiscvProgram::new(1, vec![]);
        // a0 = a0 + a1
        p.install(
            0,
            vec![
                I::Alu {
                    op: AluOp::Add,
                    rs1: Reg(10),
                    rhs: RegOrImm::Reg(Reg(11)),
                    rd: A0,
                    trapping: false,
                },
                I::Ret,
            ],
        );
        let mut m = machine();
        m.call_entry(0, &[30, 12]).unwrap();
        assert_eq!(m.run(&p, 100), Exit::Halt(42));
    }

    #[test]
    fn compare_and_branch_loop_sums() {
        use RiscvInst as I;
        // sum 1..=n without any condition codes: s1 (x9) = acc, a0 = n
        let mut p = RiscvProgram::new(1, vec![]);
        p.install(
            0,
            vec![
                I::Alu {
                    op: AluOp::Add,
                    rs1: X0,
                    rhs: RegOrImm::Imm(0),
                    rd: Reg(9),
                    trapping: false,
                }, // acc = 0
                // loop:
                I::Alu {
                    op: AluOp::Add,
                    rs1: Reg(9),
                    rhs: RegOrImm::Reg(A0),
                    rd: Reg(9),
                    trapping: false,
                },
                I::Alu {
                    op: AluOp::Sub,
                    rs1: A0,
                    rhs: RegOrImm::Imm(1),
                    rd: A0,
                    trapping: false,
                },
                I::Br {
                    cond: BrCond::Lt,
                    rs1: X0,
                    rs2: A0,
                    target: 1,
                }, // 0 < a0 → loop
                I::Alu {
                    op: AluOp::Add,
                    rs1: Reg(9),
                    rhs: RegOrImm::Imm(0),
                    rd: A0,
                    trapping: false,
                },
                I::Ret,
            ],
        );
        let mut m = machine();
        m.call_entry(0, &[5]).unwrap();
        assert_eq!(m.run(&p, 1000), Exit::Halt(15));
    }

    #[test]
    fn memory_is_little_endian() {
        use RiscvInst as I;
        let mut p = RiscvProgram::new(1, vec![]);
        p.install(
            0,
            vec![
                I::Alu {
                    op: AluOp::Add,
                    rs1: X0,
                    rhs: RegOrImm::Imm(0x1AB),
                    rd: T0,
                    trapping: false,
                },
                I::St {
                    rs: T0,
                    rs1: SP,
                    off: -8,
                    width: Width::B4,
                },
                I::Ld {
                    rd: A0,
                    rs1: SP,
                    off: -8,
                    width: Width::B1,
                    signed: false,
                },
                I::Ret,
            ],
        );
        let mut m = machine();
        m.call_entry(0, &[]).unwrap();
        // little-endian: first byte of 0x000001AB is 0xAB
        assert_eq!(m.run(&p, 100), Exit::Halt(0xAB));
    }

    #[test]
    fn slt_materializes_comparisons() {
        use RiscvInst as I;
        // a0 = (a0 < a1 signed) — exercised with a negative operand so
        // slt and sltu differ
        let mut p = RiscvProgram::new(1, vec![]);
        p.install(
            0,
            vec![
                I::Alu {
                    op: AluOp::Slt,
                    rs1: Reg(10),
                    rhs: RegOrImm::Reg(Reg(11)),
                    rd: A0,
                    trapping: false,
                },
                I::Ret,
            ],
        );
        let mut m = machine();
        m.call_entry(0, &[(-5i64) as u64, 3]).unwrap();
        assert_eq!(m.run(&p, 100), Exit::Halt(1));
        let mut m2 = machine();
        m2.call_entry(0, &[(-5i64) as u64, 3]).unwrap();
        // same bits through sltu: huge unsigned value is not < 3
        let mut p2 = RiscvProgram::new(1, vec![]);
        p2.install(
            0,
            vec![
                I::Alu {
                    op: AluOp::Sltu,
                    rs1: Reg(10),
                    rhs: RegOrImm::Reg(Reg(11)),
                    rd: A0,
                    trapping: false,
                },
                I::Ret,
            ],
        );
        assert_eq!(m2.run(&p2, 100), Exit::Halt(0));
    }

    #[test]
    fn div_by_zero_trap_and_nontrapping() {
        use RiscvInst as I;
        for (trapping, expect_trap) in [(true, true), (false, false)] {
            let mut p = RiscvProgram::new(1, vec![]);
            p.install(
                0,
                vec![
                    I::Alu {
                        op: AluOp::Sdiv,
                        rs1: A0,
                        rhs: RegOrImm::Reg(X0),
                        rd: A0,
                        trapping,
                    },
                    I::Ret,
                ],
            );
            let mut m = machine();
            m.call_entry(0, &[10]).unwrap();
            match m.run(&p, 100) {
                Exit::Trapped(t) if expect_trap => assert_eq!(t.kind, TrapKind::DivideByZero),
                Exit::Halt(0) if !expect_trap => {}
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn movsym_weight_counts_double() {
        use RiscvInst as I;
        let inst = I::MovSym {
            rd: A0,
            sym: Sym::Global(0),
        };
        assert_eq!(inst.weight(), 2);
        assert_eq!(inst.native_size(), 8);
        let mut p = RiscvProgram::new(1, vec![0x4000]);
        p.install(0, vec![inst, I::Ret]);
        assert_eq!(p.total_insts(), 3);
        let mut m = machine();
        m.call_entry(0, &[]).unwrap();
        assert_eq!(m.run(&p, 100), Exit::Halt(0x4000));
    }

    #[test]
    fn fset_handles_nan_as_all_false() {
        use RiscvInst as I;
        // f0 = 0/0 (NaN), a0 = feq f0, f0 — must be 0 on unordered
        let mut p = RiscvProgram::new(1, vec![]);
        p.install(
            0,
            vec![
                I::CvtIF {
                    fd: FReg(0),
                    rs: X0,
                    to32: false,
                    signed: true,
                }, // f0 = 0.0
                I::FAlu {
                    op: FpOp::Div,
                    fs1: FReg(0),
                    fs2: FReg(0),
                    fd: FReg(1),
                    is32: false,
                }, // NaN
                I::FSet {
                    op: FSetOp::Feq,
                    rd: A0,
                    fs1: FReg(1),
                    fs2: FReg(1),
                    is32: false,
                },
                I::Ret,
            ],
        );
        let mut m = machine();
        m.call_entry(0, &[]).unwrap();
        assert_eq!(m.run(&p, 100), Exit::Halt(0));
    }

    #[test]
    fn float_and_conversion() {
        use RiscvInst as I;
        let mut p = RiscvProgram::new(1, vec![]);
        // a0 = (int)(3.0 / 2.0) -> 1
        p.install(
            0,
            vec![
                I::Alu {
                    op: AluOp::Add,
                    rs1: X0,
                    rhs: RegOrImm::Imm(3),
                    rd: T0,
                    trapping: false,
                },
                I::CvtIF {
                    fd: FReg(0),
                    rs: T0,
                    to32: false,
                    signed: true,
                }, // f0 = 3.0
                I::Alu {
                    op: AluOp::Add,
                    rs1: X0,
                    rhs: RegOrImm::Imm(2),
                    rd: T0,
                    trapping: false,
                },
                I::CvtIF {
                    fd: FReg(1),
                    rs: T0,
                    to32: false,
                    signed: true,
                }, // f1 = 2.0
                I::FAlu {
                    op: FpOp::Div,
                    fs1: FReg(0),
                    fs2: FReg(1),
                    fd: FReg(2),
                    is32: false,
                }, // 1.5
                I::CvtFI {
                    rd: A0,
                    fs: FReg(2),
                    from32: false,
                    signed: true,
                }, // 1
                I::Ret,
            ],
        );
        let mut m = machine();
        m.call_entry(0, &[]).unwrap();
        assert_eq!(m.run(&p, 100), Exit::Halt(1));
    }

    #[test]
    fn intrinsic_args_from_a_regs() {
        use RiscvInst as I;
        let mut p = RiscvProgram::new(1, vec![]);
        p.install(
            0,
            vec![
                I::Alu {
                    op: AluOp::Add,
                    rs1: X0,
                    rhs: RegOrImm::Imm(65),
                    rd: A0,
                    trapping: false,
                },
                I::CallIntrinsic {
                    which: Intrinsic::IoPutChar,
                    nargs: 1,
                },
                I::Ret,
            ],
        );
        let mut m = machine();
        m.call_entry(0, &[]).unwrap();
        match m.run(&p, 100) {
            Exit::Intrinsic { which, args } => {
                assert_eq!(which, Intrinsic::IoPutChar);
                assert_eq!(args, vec![65]);
            }
            other => panic!("unexpected {other:?}"),
        }
        m.finish_intrinsic(0);
        assert_eq!(m.run(&p, 100), Exit::Halt(0));
    }

    #[test]
    fn unwind_across_frames() {
        use RiscvInst as I;
        let mut p = RiscvProgram::new(3, vec![]);
        p.install(2, vec![I::Unwind]); // innermost
        p.install(
            1,
            vec![
                I::Call {
                    func: 2,
                    unwind: None,
                },
                I::Ret,
            ],
        ); // middle, no pad
        p.install(
            0,
            vec![
                I::Call {
                    func: 1,
                    unwind: Some(3),
                },
                I::Alu {
                    op: AluOp::Add,
                    rs1: X0,
                    rhs: RegOrImm::Imm(1),
                    rd: A0,
                    trapping: false,
                },
                I::Ret,
                I::Alu {
                    op: AluOp::Add,
                    rs1: X0,
                    rhs: RegOrImm::Imm(99),
                    rd: A0,
                    trapping: false,
                }, // pad
                I::Ret,
            ],
        );
        let mut m = machine();
        m.call_entry(0, &[]).unwrap();
        assert_eq!(m.run(&p, 1000), Exit::Halt(99));
    }
}
