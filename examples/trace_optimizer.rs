//! Runtime profiling + the software trace cache (paper §4.2).
//!
//! 1. statically instrument a program's CFG with block counters
//!    ("static instrumentation to assist runtime path profiling"),
//! 2. run it natively and harvest the counters,
//! 3. form hot traces — including cross-procedure traces — and
//! 4. reoptimize along the traces (inline the hot callee, rerun the
//!    scalar pipeline) and show the simulated-cycle improvement.
//!
//! Run with: `cargo run --example trace_optimizer`

use llva::core::layout::TargetConfig;
use llva::engine::llee::{ExecutionManager, TargetIsa};
use llva::engine::{profile, trace};

const PROGRAM: &str = r#"
int weight(int x) {
    int w = x % 7;
    if (w < 0) w = -w;
    return w * w + 1;
}

int main() {
    int acc = 0;
    for (int i = 0; i < 2000; i++) {
        acc += weight(i);
        if (acc > 1000000) acc -= 1000000;
    }
    return acc;
}
"#;

fn main() {
    println!("=== profiling + software trace cache ===\n");

    // instrument and run
    let mut instrumented =
        llva::minic::compile(PROGRAM, "traced", TargetConfig::default()).expect("compiles");
    let map = profile::instrument(&mut instrumented);
    llva::core::verifier::verify_module(&instrumented).expect("verifies");
    let mut mgr = ExecutionManager::new(instrumented, TargetIsa::X86);
    let out = mgr.run("main", &[]).expect("runs");
    println!("instrumented run: result={}, {} blocks profiled", out.value, map.len);

    // harvest counters
    let counts = profile::read_counters(&mgr, &map);
    let clean = llva::minic::compile(PROGRAM, "traced", TargetConfig::default()).expect("compiles");
    println!("\nhot blocks:");
    let mut hot: Vec<_> = map.index.iter().map(|(&(f, b), &i)| (counts[i], f, b)).collect();
    hot.sort_by_key(|e| std::cmp::Reverse(e.0));
    for (count, f, b) in hot.iter().take(5) {
        println!(
            "  {:>8}x  %{}:{}",
            count,
            clean.function(*f).name(),
            clean.function(*f).block(*b).name()
        );
    }

    // form traces
    let cache = trace::form_traces(&clean, &map, &counts, 500, 16);
    println!("\ntraces formed: {}", cache.len());
    for t in cache.traces() {
        let blocks: Vec<String> = t
            .blocks
            .iter()
            .map(|(f, b)| format!("{}:{}", clean.function(*f).name(), clean.function(*f).block(*b).name()))
            .collect();
        println!(
            "  heat={:<7} cross_procedure={:<5} [{}]",
            t.heat,
            t.cross_procedure,
            blocks.join(" -> ")
        );
    }

    // reoptimize along the traces and compare simulated cycles
    let cycles_of = |m: llva::core::module::Module| {
        let mut mgr = ExecutionManager::new(m, TargetIsa::X86);
        let out = mgr.run("main", &[]).expect("runs");
        (out.value, mgr.exec_stats().cycles)
    };
    let (v0, c0) = cycles_of(clean.clone());
    let mut reopt = clean;
    let changed = trace::reoptimize(&mut reopt, &cache);
    llva::core::verifier::verify_module(&reopt).expect("reoptimized module verifies");
    let (v1, c1) = cycles_of(reopt);
    assert_eq!(v0, v1, "reoptimization preserves semantics");
    println!(
        "\nreoptimize: changed={changed}, simulated cycles {} -> {} ({:.1}% saved), result {} unchanged",
        c0,
        c1,
        100.0 * (c0 as f64 - c1 as f64) / c0 as f64,
        v1
    );
}
