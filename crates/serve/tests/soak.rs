//! Multi-tenant fault-isolation soak — the acceptance proof for the
//! serving layer (ISSUE 7).
//!
//! One victim tenant and two healthy tenants share a service whose
//! cache shards run `FaultyStorage` chaos. The victim's fast tiers are
//! killed via `TierKill` (set `LLVA_KILL_TIER` to choose the rung,
//! matching the CI matrix; default sweeps the full fast-tier prefix)
//! and its fuel budget is sized to run dry mid-soak. The claims under
//! test:
//!
//! * **zero divergences for bystanders** — every healthy-tenant call
//!   returns exactly the structural interpreter's oracle value, at
//!   full speed, with no incidents and no quarantines, while the
//!   victim is being sabotaged on the next executor over;
//! * **the victim degrades, never corrupts** — its completed calls
//!   still match the oracle (wrong answers are worse than no answers);
//! * **quotas reject instead of queueing** — the victim's exhausted
//!   fuel budget surfaces as counted rejections;
//! * **everything is observable** — the victim's incidents, quarantine
//!   gauge, and quota rejections all appear in the metrics text.
//!
//! Chaos seeds honor `LLVA_FAULT_SEED` (comma-separated), so CI
//! crosses storage-fault seeds against tier kills.

use llva_core::layout::TargetConfig;
use llva_core::printer::print_module;
use llva_engine::storage::{FaultPlan, FaultyStorage, MemStorage};
use llva_engine::supervisor::{kills_from_env, Tier, TierKill};
use llva_engine::Interpreter;
use llva_serve::{BoxedStorage, ExecService, QuotaKind, ServeConfig, ServeError, TenantQuota};

const WORKLOAD: &str = "ptrdist-anagram";
const ORACLE_FUEL: u64 = 2_000_000_000;
const VICTIM_FUEL_BUDGET: u64 = 300_000;
const VICTIM_ROUNDS: usize = 8;
const HEALTHY_ROUNDS: usize = 4;

fn seeds() -> Vec<u64> {
    match std::env::var("LLVA_FAULT_SEED") {
        Ok(s) => s
            .split(',')
            .filter_map(|t| t.trim().parse().ok())
            .collect(),
        Err(_) => vec![1, 7, 0x00de_cade],
    }
}

fn kills() -> Vec<TierKill> {
    let from_env = kills_from_env();
    if !from_env.is_empty() {
        return from_env;
    }
    vec![
        TierKill::panic(Tier::Translated),
        TierKill::panic(Tier::Traced),
        TierKill::panic(Tier::FastInterp),
    ]
}

fn chaos(seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        read_fail: 5,
        read_truncate: 6,
        read_bit_flip: 7,
        torn_write: 9,
        stale_timestamp: 8,
    }
}

/// Extracts `name{labels} value` from the metrics text.
fn metric_value(metrics: &str, sample: &str) -> u64 {
    metrics
        .lines()
        .find_map(|line| line.strip_prefix(sample)?.trim().parse().ok())
        .unwrap_or_else(|| panic!("metrics sample '{sample}' missing:\n{metrics}"))
}

#[test]
fn victim_sabotage_never_touches_healthy_tenants() {
    let kills = kills();
    // Only a killed *prefix* of the ladder manifests: the supervisor
    // serves at the fastest healthy rung, so a kill below it is never
    // exercised and produces no incident.
    let killed_prefix = Tier::LADDER
        .iter()
        .take_while(|t| kills.iter().any(|k| k.tier == **t))
        .count();
    let kills_all_tiers = killed_prefix >= Tier::LADDER.len();
    let workload = llva_workloads::all()
        .into_iter()
        .find(|w| w.name == WORKLOAD)
        .expect("Table 2 contains ptrdist-anagram");
    let module = workload.compile(TargetConfig::default());
    let text = print_module(&module);

    let mut interp = Interpreter::new(&module);
    interp.set_fuel(ORACLE_FUEL);
    let expected = interp
        .run("main", &[])
        .expect("structural interpreter oracle completes");

    for seed in seeds() {
        let svc = ExecService::with_storage(ServeConfig::default(), |i| {
            Box::new(FaultyStorage::new(
                MemStorage::new(),
                chaos(seed.wrapping_mul(0x9e37_79b9).wrapping_add(i as u64)),
            )) as BoxedStorage
        });
        svc.add_tenant(
            "victim",
            TenantQuota {
                fuel_budget: VICTIM_FUEL_BUDGET,
                ..TenantQuota::default()
            },
        )
        .unwrap();
        svc.add_tenant("healthy-1", TenantQuota::default()).unwrap();
        svc.add_tenant("healthy-2", TenantQuota::default()).unwrap();
        for tenant in ["victim", "healthy-1", "healthy-2"] {
            svc.load_module(tenant, "w", &text)
                .unwrap_or_else(|e| panic!("seed {seed}: load for {tenant}: {e}"));
        }
        svc.arm_kills("victim", "w", kills.clone(), 0).unwrap();

        let mut victim_rejected_fuel = 0u64;
        std::thread::scope(|scope| {
            // sabotaged tenant: hammered concurrently with the others
            let victim = {
                let svc = svc.clone();
                let rejected = &mut victim_rejected_fuel;
                scope.spawn(move || {
                    for round in 0..VICTIM_ROUNDS {
                        match svc.call("victim", "w", "main", &[]) {
                            Ok(run) => {
                                if let Some(v) = run.value() {
                                    assert_eq!(
                                        v, expected,
                                        "seed {seed} round {round}: victim degraded to a WRONG answer"
                                    );
                                }
                            }
                            Err(ServeError::QuotaExceeded {
                                kind: QuotaKind::Fuel,
                                ..
                            }) => *rejected += 1,
                            Err(ServeError::TiersExhausted { .. }) if kills_all_tiers => {}
                            Err(e) => panic!("seed {seed} round {round}: victim: {e}"),
                        }
                    }
                })
            };
            // bystanders: every call must be oracle-identical and fast
            let healthy: Vec<_> = ["healthy-1", "healthy-2"]
                .into_iter()
                .map(|tenant| {
                    let svc = svc.clone();
                    scope.spawn(move || {
                        for round in 0..HEALTHY_ROUNDS {
                            let run = svc
                                .call(tenant, "w", "main", &[])
                                .unwrap_or_else(|e| {
                                    panic!("seed {seed} round {round}: {tenant}: {e}")
                                });
                            assert_eq!(
                                run.value(),
                                Some(expected),
                                "seed {seed} round {round}: {tenant} diverged from the oracle"
                            );
                        }
                    })
                })
                .collect();
            victim.join().expect("victim caller panicked");
            for handle in healthy {
                handle.join().expect("healthy caller panicked");
            }
        });

        // --- healthy tenants: zero divergences, zero collateral ---
        for tenant in ["healthy-1", "healthy-2"] {
            let counters = svc.tenant_counters(tenant).unwrap();
            assert_eq!(
                counters.calls_ok, HEALTHY_ROUNDS as u64,
                "seed {seed}: every {tenant} call completed"
            );
            assert_eq!(counters.rejected_total(), 0, "seed {seed}: {tenant}");
            let snapshot = svc.tenant_snapshot(tenant).unwrap();
            assert_eq!(
                snapshot.modules[0].incidents_total, 0,
                "seed {seed}: {tenant} must see no incidents while the victim burns"
            );
            assert!(
                snapshot.modules[0].quarantined.is_empty(),
                "seed {seed}: {tenant} must have no quarantines"
            );
        }

        // --- victim: faults contained, quotas enforced, all visible ---
        let victim_counters = svc.tenant_counters("victim").unwrap();
        if !kills_all_tiers {
            // with every rung killed the victim never executes, so its
            // budget cannot drain — fuel pressure only exists when at
            // least one tier still serves
            assert!(
                victim_counters.rejected_fuel >= 1,
                "seed {seed}: the victim's fuel budget must run dry mid-soak \
                 (counters: {victim_counters:?})"
            );
        }
        assert_eq!(victim_rejected_fuel, victim_counters.rejected_fuel);
        let snapshot = svc.tenant_snapshot("victim").unwrap();
        assert!(
            snapshot.modules[0].incidents_total >= killed_prefix as u64,
            "seed {seed}: one incident per exercised kill at minimum \
             ({} < {killed_prefix})",
            snapshot.modules[0].incidents_total
        );
        if !kills_all_tiers {
            assert_eq!(
                snapshot.modules[0].quarantined.len(),
                killed_prefix,
                "seed {seed}: every exercised kill quarantined for main"
            );
        }

        let metrics = svc.metrics_text();
        assert_eq!(
            metric_value(
                &metrics,
                r#"llva_serve_calls_total{tenant="victim",result="rejected_fuel"}"#
            ),
            victim_counters.rejected_fuel,
            "seed {seed}: quota rejections visible in metrics"
        );
        assert!(
            metric_value(
                &metrics,
                r#"llva_serve_incidents_total{tenant="victim",module="w"}"#
            ) >= killed_prefix as u64,
            "seed {seed}: victim incidents visible in metrics"
        );
        for tenant in ["healthy-1", "healthy-2"] {
            assert_eq!(
                metric_value(
                    &metrics,
                    &format!(r#"llva_serve_incidents_total{{tenant="{tenant}",module="w"}}"#)
                ),
                0,
                "seed {seed}: {tenant} clean in metrics"
            );
        }
    }
}
