//! Call graph construction.
//!
//! The paper's Data Structure Analysis "computes both an accurate call
//! graph and points-to information" (§5.1). This module builds the
//! direct-call graph plus a conservative treatment of indirect calls
//! (any address-taken function is a possible indirect callee), which is
//! what the inliner ordering and global-DCE need.

use llva_core::instruction::Opcode;
use llva_core::module::{FuncId, Module};
use llva_core::value::{Constant, ValueData};
use std::collections::{HashMap, HashSet};

/// The call graph of a module.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    callees: HashMap<FuncId, Vec<FuncId>>,
    callers: HashMap<FuncId, Vec<FuncId>>,
    address_taken: HashSet<FuncId>,
    indirect_call_sites: usize,
}

impl CallGraph {
    /// Builds the call graph for `module`.
    pub fn build(module: &Module) -> CallGraph {
        let mut cg = CallGraph::default();
        for (fid, func) in module.functions() {
            cg.callees.entry(fid).or_default();
            if func.is_declaration() {
                continue;
            }
            // address-taken: a FunctionAddr constant used anywhere except
            // as the callee slot of a direct call
            for (_, inst_id) in func.inst_iter() {
                let inst = func.inst(inst_id);
                let is_call = matches!(inst.opcode(), Opcode::Call | Opcode::Invoke);
                for (oi, &op) in inst.operands().iter().enumerate() {
                    if let ValueData::Const(Constant::FunctionAddr { func: target, .. }) =
                        func.value(op)
                    {
                        if is_call && oi == 0 {
                            cg.callees.entry(fid).or_default().push(*target);
                            cg.callers.entry(*target).or_default().push(fid);
                        } else {
                            cg.address_taken.insert(*target);
                        }
                    } else if is_call && oi == 0 {
                        cg.indirect_call_sites += 1;
                    }
                }
            }
        }
        // globals' initializers also take addresses
        for (_, g) in module.globals() {
            walk(g.init(), &mut |c| {
                if let Constant::FunctionAddr { func, .. } = c {
                    cg.address_taken.insert(*func);
                }
            });
        }
        for v in cg.callees.values_mut() {
            v.sort();
            v.dedup();
        }
        for v in cg.callers.values_mut() {
            v.sort();
            v.dedup();
        }
        cg
    }

    /// Direct callees of `f`.
    pub fn callees(&self, f: FuncId) -> &[FuncId] {
        self.callees.get(&f).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Direct callers of `f`.
    pub fn callers(&self, f: FuncId) -> &[FuncId] {
        self.callers.get(&f).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether `f`'s address escapes into data (possible indirect callee).
    pub fn is_address_taken(&self, f: FuncId) -> bool {
        self.address_taken.contains(&f)
    }

    /// Number of indirect call sites observed.
    pub fn indirect_call_sites(&self) -> usize {
        self.indirect_call_sites
    }

    /// A bottom-up (callees-before-callers) ordering of the graph's
    /// strongly-connected components, approximated by post-order DFS.
    pub fn bottom_up_order(&self, module: &Module) -> Vec<FuncId> {
        let mut visited = HashSet::new();
        let mut order = Vec::new();
        for (fid, _) in module.functions() {
            self.dfs(fid, &mut visited, &mut order);
        }
        order
    }

    fn dfs(&self, f: FuncId, visited: &mut HashSet<FuncId>, order: &mut Vec<FuncId>) {
        if !visited.insert(f) {
            return;
        }
        for &c in self.callees(f) {
            self.dfs(c, visited, order);
        }
        order.push(f);
    }
}

fn walk(init: &llva_core::module::Initializer, f: &mut impl FnMut(&Constant)) {
    use llva_core::module::Initializer;
    match init {
        Initializer::Scalar(c) => f(c),
        Initializer::Array(items) | Initializer::Struct(items) => {
            for i in items {
                walk(i, f);
            }
        }
        Initializer::Zero | Initializer::Bytes(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_edges_and_bottom_up_order() {
        let m = llva_core::parser::parse_module(
            r#"
int %leaf(int %x) {
entry:
    ret int %x
}

int %mid(int %x) {
entry:
    %v = call int %leaf(int %x)
    ret int %v
}

int %main() {
entry:
    %v = call int %mid(int 1)
    ret int %v
}
"#,
        )
        .expect("parses");
        let cg = CallGraph::build(&m);
        let leaf = m.function_by_name("leaf").expect("leaf");
        let mid = m.function_by_name("mid").expect("mid");
        let main = m.function_by_name("main").expect("main");
        assert_eq!(cg.callees(main), &[mid]);
        assert_eq!(cg.callees(mid), &[leaf]);
        assert_eq!(cg.callers(leaf), &[mid]);
        let order = cg.bottom_up_order(&m);
        let pos = |f: FuncId| order.iter().position(|&x| x == f).expect("present");
        assert!(pos(leaf) < pos(mid));
        assert!(pos(mid) < pos(main));
    }

    #[test]
    fn address_taken_detection() {
        let m = llva_core::parser::parse_module(
            r#"
int %cb(int %x) {
entry:
    ret int %x
}

@table = global int (int)* %cb

int %main(int (int)* %f) {
entry:
    %v = call int %f(int 1)
    ret int %v
}
"#,
        )
        .expect("parses");
        let cg = CallGraph::build(&m);
        let cb = m.function_by_name("cb").expect("cb");
        assert!(cg.is_address_taken(cb));
        assert_eq!(cg.indirect_call_sites(), 1);
    }
}
