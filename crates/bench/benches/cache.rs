//! Offline-cache bench (paper §4.1): program startup with a cold JIT
//! vs. loading cached translations from the OS storage API. This is the
//! quantitative version of the paper's argument that OS-independent
//! offline caching beats DAISY/Crusoe's translate-every-launch model.

use criterion::{criterion_group, criterion_main, Criterion};
use llva_core::layout::TargetConfig;
use llva_engine::llee::{ExecutionManager, TargetIsa};
use llva_engine::storage::{MemStorage, SharedStorage, Storage};

fn bench_startup(c: &mut Criterion) {
    let mut group = c.benchmark_group("startup");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);
    let w = llva_workloads::by_name("254.gap").expect("workload");

    // cold: no storage — every launch translates everything (DAISY model)
    group.bench_function("jit_every_launch", |b| {
        b.iter_batched(
            || w.compile(TargetConfig::default()),
            |m| {
                let mut mgr = ExecutionManager::new(m, TargetIsa::X86);
                mgr.translate_all().expect("translates");
                mgr
            },
            criterion::BatchSize::SmallInput,
        );
    });

    // warm: a pre-populated offline cache (LLVA model)
    let storage = SharedStorage::new(MemStorage::new());
    {
        let m = w.compile(TargetConfig::default());
        let mut mgr = ExecutionManager::new(m, TargetIsa::X86);
        mgr.set_storage(Box::new(storage.clone()), "bench");
        mgr.translate_all().expect("translates");
        assert!(storage.cache_size("bench").unwrap_or(0) > 0);
    }
    group.bench_function("load_from_offline_cache", |b| {
        b.iter_batched(
            || w.compile(TargetConfig::default()),
            |m| {
                let mut mgr = ExecutionManager::new(m, TargetIsa::X86);
                mgr.set_storage(Box::new(storage.clone()), "bench");
                mgr.translate_all().expect("loads");
                assert_eq!(mgr.stats().functions_translated, 0);
                mgr
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(40);
    let w = llva_workloads::by_name("300.twolf").expect("workload");
    let m = w.compile(TargetConfig::ia32());
    let f = m.function_by_name("main").expect("main");
    let code = llva_backend::compile_x86(&m, f);
    let blob = llva_engine::codec::encode_x86(&code);
    group.bench_function("encode_x86", |b| {
        b.iter(|| llva_engine::codec::encode_x86(&code));
    });
    group.bench_function("decode_x86", |b| {
        b.iter(|| llva_engine::codec::decode_x86(&blob).expect("decodes"));
    });
    // bytecode (virtual object code) for comparison
    group.bench_function("encode_bytecode", |b| {
        b.iter(|| llva_core::bytecode::encode_module(&m));
    });
    let bytes = llva_core::bytecode::encode_module(&m);
    group.bench_function("decode_bytecode", |b| {
        b.iter(|| llva_core::bytecode::decode_module(&bytes).expect("decodes"));
    });
    group.finish();
}

criterion_group!(benches, bench_startup, bench_codec);
criterion_main!(benches);
