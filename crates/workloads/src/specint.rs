//! minic analogs of the SPEC CINT2000 programs in the paper's Table 2
//! (DESIGN.md substitution #3). Each implements the benchmark's core
//! algorithm at reduced scale and returns a checksum.

/// `181.mcf`: minimum-cost flow — the kernel here is Bellman–Ford
/// shortest augmenting paths with arc costs.
pub const MCF: &str = r#"
// 181.mcf analog: successive shortest paths on a small flow network.
int cap[24][24];
int cost[24][24];
int dist[24];
int pred[24];

int lcg(int seed) {
    return (seed * 1103515245 + 12345) % 2147483647;
}

int main() {
    int n = 24;
    int seed = 3;
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < n; j++) {
            cap[i][j] = 0;
            cost[i][j] = 0;
        }
    }
    // layered random network 0 -> ... -> n-1
    for (int i = 0; i < n - 1; i++) {
        for (int k = 1; k <= 3; k++) {
            int j = i + k;
            if (j >= n) continue;
            seed = lcg(seed);
            int c = seed % 9;
            if (c < 0) c = -c;
            cap[i][j] = 2 + (seed % 3 + 3) % 3;
            cost[i][j] = c + 1;
        }
    }
    int total_cost = 0;
    int flow = 0;
    while (flow < 8) {
        // Bellman-Ford from 0 to n-1 over arcs with residual capacity
        for (int i = 0; i < n; i++) { dist[i] = 1000000; pred[i] = -1; }
        dist[0] = 0;
        for (int round = 0; round < n; round++) {
            for (int i = 0; i < n; i++) {
                if (dist[i] >= 1000000) continue;
                for (int j = 0; j < n; j++) {
                    if (cap[i][j] > 0 && dist[i] + cost[i][j] < dist[j]) {
                        dist[j] = dist[i] + cost[i][j];
                        pred[j] = i;
                    }
                }
            }
        }
        if (pred[n - 1] == -1) break;
        // push one unit along the path
        int v = n - 1;
        while (v != 0) {
            int u = pred[v];
            cap[u][v] -= 1;
            cap[v][u] += 1;
            total_cost += cost[u][v];
            v = u;
        }
        flow++;
    }
    return total_cost * 10 + flow;
}
"#;

/// `256.bzip2`: block compression — counting sort of rotations
/// (BWT-flavored), move-to-front, and run-length measurement.
pub const BZIP2: &str = r#"
// 256.bzip2 analog: BWT-ish transform + MTF + RLE accounting.
char buf[256];
int order[256];
char last_col[256];
int mtf[256];

int lcg(int seed) {
    return (seed * 1103515245 + 12345) % 2147483647;
}

int rot_cmp(int a, int b, int n) {
    for (int k = 0; k < n; k++) {
        char ca = buf[(a + k) % n];
        char cb = buf[(b + k) % n];
        if (ca < cb) return -1;
        if (ca > cb) return 1;
    }
    return 0;
}

int main() {
    int n = 128;
    int seed = 77;
    for (int i = 0; i < n; i++) {
        seed = lcg(seed);
        int r = seed % 4;
        if (r < 0) r = -r;
        buf[i] = 'a' + r; // small alphabet -> long runs after BWT
    }
    for (int i = 0; i < n; i++) order[i] = i;
    // selection sort of rotations
    for (int i = 0; i < n; i++) {
        int best = i;
        for (int j = i + 1; j < n; j++) {
            if (rot_cmp(order[j], order[best], n) < 0) best = j;
        }
        int t = order[i]; order[i] = order[best]; order[best] = t;
    }
    for (int i = 0; i < n; i++) {
        last_col[i] = buf[(order[i] + n - 1) % n];
    }
    // move-to-front
    for (int i = 0; i < 26; i++) mtf[i] = 'a' + i;
    int mtf_sum = 0;
    for (int i = 0; i < n; i++) {
        int c = last_col[i];
        int pos = 0;
        while (mtf[pos] != c) pos++;
        mtf_sum += pos;
        while (pos > 0) { mtf[pos] = mtf[pos - 1]; pos--; }
        mtf[0] = c;
    }
    // run-length accounting on the BWT output
    int runs = 1;
    for (int i = 1; i < n; i++) {
        if (last_col[i] != last_col[i - 1]) runs++;
    }
    return runs * 1000 + mtf_sum % 1000;
}
"#;

/// `164.gzip`: LZ77 — longest-match search in a sliding window.
pub const GZIP: &str = r#"
// 164.gzip analog: LZ77 longest-match token stream length.
char data[512];

int lcg(int seed) {
    return (seed * 1103515245 + 12345) % 2147483647;
}

int main() {
    int n = 384;
    int seed = 9;
    // compressible data: repeated motifs with noise
    for (int i = 0; i < n; i++) {
        if (i % 16 < 12) {
            data[i] = 'a' + (i % 4);
        } else {
            seed = lcg(seed);
            int r = seed % 26;
            if (r < 0) r = -r;
            data[i] = 'a' + r;
        }
    }
    int pos = 0;
    int tokens = 0;
    int matched = 0;
    while (pos < n) {
        int best_len = 0;
        int best_off = 0;
        int start = pos - 64;
        if (start < 0) start = 0;
        for (int cand = start; cand < pos; cand++) {
            int len = 0;
            while (pos + len < n && data[cand + len] == data[pos + len] && len < 32) {
                len++;
            }
            if (len > best_len) { best_len = len; best_off = pos - cand; }
        }
        if (best_len >= 3) {
            matched += best_len;
            pos += best_len;
        } else {
            pos += 1;
        }
        tokens++;
        if (best_off > 10000) tokens += 0;
    }
    return tokens * 1000 + matched % 1000;
}
"#;

/// `197.parser`: the link-grammar parser — here a tokenizer plus a
/// grammar checker for simple generated sentences.
pub const PARSER: &str = r#"
// 197.parser analog: tokenize and grammar-check generated sentences.
// grammar: S -> NP VP ; NP -> det noun | noun ; VP -> verb NP
// token codes: 1=det 2=noun 3=verb
int toks[32];
int ntoks;
int cursor;

int lcg(int seed) {
    return (seed * 1103515245 + 12345) % 2147483647;
}

int accept_np() {
    if (cursor < ntoks && toks[cursor] == 1) {
        if (cursor + 1 < ntoks && toks[cursor + 1] == 2) {
            cursor += 2;
            return 1;
        }
        return 0;
    }
    if (cursor < ntoks && toks[cursor] == 2) {
        cursor += 1;
        return 1;
    }
    return 0;
}

int accept_vp() {
    if (cursor < ntoks && toks[cursor] == 3) {
        cursor += 1;
        return accept_np();
    }
    return 0;
}

int accept_sentence() {
    cursor = 0;
    if (!accept_np()) return 0;
    if (!accept_vp()) return 0;
    return cursor == ntoks;
}

int main() {
    int seed = 21;
    int good = 0;
    int bad = 0;
    for (int s = 0; s < 200; s++) {
        seed = lcg(seed);
        int shape = seed % 6;
        if (shape < 0) shape = -shape;
        ntoks = 0;
        // generate a candidate sentence, sometimes ungrammatical
        if (shape == 0) { toks[0]=1; toks[1]=2; toks[2]=3; toks[3]=2; ntoks=4; }
        else if (shape == 1) { toks[0]=2; toks[1]=3; toks[2]=1; toks[3]=2; ntoks=4; }
        else if (shape == 2) { toks[0]=2; toks[1]=3; toks[2]=2; ntoks=3; }
        else if (shape == 3) { toks[0]=3; toks[1]=2; ntoks=2; }
        else if (shape == 4) { toks[0]=1; toks[1]=2; toks[2]=3; toks[3]=1; toks[4]=2; ntoks=5; }
        else { toks[0]=1; toks[1]=1; toks[2]=3; ntoks=3; }
        if (accept_sentence()) good++; else bad++;
    }
    return good * 1000 + bad;
}
"#;

/// `175.vpr`: FPGA placement — simulated-annealing-flavored swap
/// improvement of a wirelength cost on a grid.
pub const VPR: &str = r#"
// 175.vpr analog: placement by greedy swap improvement of wirelength.
int cell_x[48];
int cell_y[48];
int net_a[64];
int net_b[64];

int lcg(int seed) {
    return (seed * 1103515245 + 12345) % 2147483647;
}

int absi(int v) { return v < 0 ? -v : v; }

int wirelength() {
    int total = 0;
    for (int k = 0; k < 64; k++) {
        int a = net_a[k];
        int b = net_b[k];
        total += absi(cell_x[a] - cell_x[b]) + absi(cell_y[a] - cell_y[b]);
    }
    return total;
}

int main() {
    int seed = 13;
    for (int i = 0; i < 48; i++) {
        cell_x[i] = i % 8;
        cell_y[i] = i / 8;
    }
    for (int k = 0; k < 64; k++) {
        seed = lcg(seed);
        int a = seed % 48; if (a < 0) a = -a;
        seed = lcg(seed);
        int b = seed % 48; if (b < 0) b = -b;
        if (a == b) b = (b + 1) % 48;
        net_a[k] = a;
        net_b[k] = b;
    }
    int before = wirelength();
    for (int pass = 0; pass < 2; pass++) {
        for (int i = 0; i < 48; i++) {
            for (int j = i + 1; j < 48; j++) {
                int old = wirelength();
                int tx = cell_x[i]; int ty = cell_y[i];
                cell_x[i] = cell_x[j]; cell_y[i] = cell_y[j];
                cell_x[j] = tx; cell_y[j] = ty;
                if (wirelength() >= old) {
                    // undo
                    tx = cell_x[i]; ty = cell_y[i];
                    cell_x[i] = cell_x[j]; cell_y[i] = cell_y[j];
                    cell_x[j] = tx; cell_y[j] = ty;
                }
            }
        }
    }
    int after = wirelength();
    return before - after;
}
"#;

/// `300.twolf`: standard-cell place and route — annealing with an
/// acceptance temperature schedule.
pub const TWOLF: &str = r#"
// 300.twolf analog: annealed cell placement with cooling schedule.
int px[40];
int py[40];
int wa[80];
int wb[80];

int lcg(int seed) {
    return (seed * 1103515245 + 12345) % 2147483647;
}

int absi(int v) { return v < 0 ? -v : v; }

int cost() {
    int c = 0;
    for (int k = 0; k < 80; k++) {
        c += absi(px[wa[k]] - px[wb[k]]) + absi(py[wa[k]] - py[wb[k]]);
    }
    return c;
}

int main() {
    int seed = 19;
    for (int i = 0; i < 40; i++) { px[i] = i % 5; py[i] = i / 5; }
    for (int k = 0; k < 80; k++) {
        seed = lcg(seed);
        int a = seed % 40; if (a < 0) a = -a;
        seed = lcg(seed);
        int b = seed % 40; if (b < 0) b = -b;
        if (a == b) b = (b + 7) % 40;
        wa[k] = a;
        wb[k] = b;
    }
    int start = cost();
    int temp = 12;
    int accepted = 0;
    while (temp > 0) {
        for (int trial = 0; trial < 150; trial++) {
            seed = lcg(seed);
            int i = seed % 40; if (i < 0) i = -i;
            seed = lcg(seed);
            int j = seed % 40; if (j < 0) j = -j;
            if (i == j) continue;
            int old = cost();
            int tx = px[i]; int ty = py[i];
            px[i] = px[j]; py[i] = py[j];
            px[j] = tx; py[j] = ty;
            int delta = cost() - old;
            seed = lcg(seed);
            int noise = seed % (temp + 1);
            if (noise < 0) noise = -noise;
            if (delta > noise) {
                tx = px[i]; ty = py[i];
                px[i] = px[j]; py[i] = py[j];
                px[j] = tx; py[j] = ty;
            } else {
                accepted++;
            }
        }
        temp -= 3;
    }
    return (start - cost()) * 100 + accepted % 100;
}
"#;

/// `186.crafty`: chess — here alpha-beta game-tree search with a
/// transposition-table-style memo over a Nim-like game.
pub const CRAFTY: &str = r#"
// 186.crafty analog: alpha-beta search over a take-away game tree.
int memo_key[512];
int memo_val[512];

int search(int pile, int other, int alpha, int beta, int depth) {
    if (pile == 0) return -100 + depth; // player to move already won previous
    if (depth > 12) return other - pile;
    int h = (pile * 37 + other * 11 + depth) % 512;
    if (h < 0) h = -h;
    int key = pile * 10000 + other * 100 + depth;
    if (memo_key[h] == key) return memo_val[h];
    int best = -1000;
    for (int take = 1; take <= 3; take++) {
        if (take > pile) break;
        int v = -search(other, pile - take, -beta, -alpha, depth + 1);
        if (v > best) best = v;
        if (best > alpha) alpha = best;
        if (alpha >= beta) break;
    }
    memo_key[h] = key;
    memo_val[h] = best;
    return best;
}

int main() {
    int total = 0;
    for (int pile = 4; pile <= 14; pile++) {
        for (int other = 3; other <= 9; other += 3) {
            total += search(pile, other, -1000, 1000, 0);
        }
    }
    return total;
}
"#;

/// `255.vortex`: an object-oriented database — record store with a
/// hash index, insert/lookup/delete transactions.
pub const VORTEX: &str = r#"
// 255.vortex analog: hashed record store with mixed transactions.
struct Record {
    int key;
    int a;
    int b;
    int live;
};

struct Record table[509];

int lcg(int seed) {
    return (seed * 1103515245 + 12345) % 2147483647;
}

int slot_of(int key) {
    int h = key % 509;
    if (h < 0) h = -h;
    for (int probe = 0; probe < 509; probe++) {
        int s = (h + probe) % 509;
        if (!table[s].live || table[s].key == key) return s;
    }
    return -1;
}

int insert(int key, int a, int b) {
    int s = slot_of(key);
    if (s < 0) return 0;
    table[s].key = key;
    table[s].a = a;
    table[s].b = b;
    table[s].live = 1;
    return 1;
}

int lookup(int key) {
    int s = slot_of(key);
    if (s < 0) return 0;
    if (table[s].live && table[s].key == key) return table[s].a + table[s].b;
    return 0;
}

int remove_rec(int key) {
    int s = slot_of(key);
    if (s < 0) return 0;
    if (table[s].live && table[s].key == key) { table[s].live = 0; return 1; }
    return 0;
}

int main() {
    int seed = 31;
    int checksum = 0;
    for (int t = 0; t < 400; t++) {
        seed = lcg(seed);
        int op = seed % 3;
        if (op < 0) op = -op;
        seed = lcg(seed);
        int key = seed % 300;
        if (key < 0) key = -key;
        if (op == 0) {
            checksum += insert(key, key * 2, key * 3);
        } else if (op == 1) {
            checksum += lookup(key) % 97;
        } else {
            checksum += remove_rec(key);
        }
    }
    return checksum;
}
"#;

/// `254.gap`: computational group theory — permutation composition and
/// orbit counting.
pub const GAP: &str = r#"
// 254.gap analog: permutation group orbit computation.
int perm_a[32];
int perm_b[32];
int cur[32];
int tmp[32];
int seen_id[4096];

int encode12(int* p) {
    // 12-bit-ish encoding of the first 3 images (distinguishes enough)
    return p[0] * 1024 + p[1] * 32 + p[2];
}

int main() {
    int n = 16;
    // a = n-cycle, b = transposition
    for (int i = 0; i < n; i++) {
        perm_a[i] = (i + 1) % n;
        perm_b[i] = i;
    }
    perm_b[0] = 1;
    perm_b[1] = 0;
    for (int i = 0; i < n; i++) cur[i] = i;
    for (int i = 0; i < 4096; i++) seen_id[i] = 0;

    int distinct = 0;
    int steps = 0;
    // random walk in the group, counting distinct signatures
    int seed = 23;
    for (int w = 0; w < 2000; w++) {
        seed = (seed * 1103515245 + 12345) % 2147483647;
        int pick = seed % 2;
        if (pick < 0) pick = -pick;
        // cur = cur * (a or b)
        for (int i = 0; i < n; i++) {
            if (pick == 0) tmp[i] = perm_a[cur[i]];
            else tmp[i] = perm_b[cur[i]];
        }
        for (int i = 0; i < n; i++) cur[i] = tmp[i];
        int sig = encode12(cur) % 4096;
        if (sig < 0) sig = -sig;
        if (!seen_id[sig]) { seen_id[sig] = 1; distinct++; }
        steps++;
    }
    return distinct * 10 + steps % 10;
}
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sources_parse() {
        for (name, src) in [
            ("mcf", MCF),
            ("bzip2", BZIP2),
            ("gzip", GZIP),
            ("parser", PARSER),
            ("vpr", VPR),
            ("twolf", TWOLF),
            ("crafty", CRAFTY),
            ("vortex", VORTEX),
            ("gap", GAP),
        ] {
            llva_minic::parse(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }
}
