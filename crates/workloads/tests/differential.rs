//! Differential testing: every Table 2 workload must produce the same
//! checksum on the reference interpreter and both native targets.
//! This is the repository's strongest end-to-end correctness check —
//! it exercises the front end, the verifier, both code generators,
//! both simulated processors, and the execution manager.

use llva_core::layout::TargetConfig;
use llva_engine::llee::{ExecutionManager, TargetIsa};
use llva_engine::Interpreter;

fn interp_result(w: &llva_workloads::Workload) -> u64 {
    let m = w.compile(TargetConfig::default());
    let mut interp = Interpreter::new(&m);
    interp.set_fuel(2_000_000_000);
    interp
        .run("main", &[])
        .unwrap_or_else(|e| panic!("{} (interp): {e}", w.name))
}

fn native_result(w: &llva_workloads::Workload, isa: TargetIsa) -> u64 {
    let m = w.compile(TargetConfig::default());
    let mut mgr = ExecutionManager::new(m, isa);
    mgr.run("main", &[])
        .unwrap_or_else(|e| panic!("{} ({isa}): {e}", w.name))
        .value
}

#[test]
fn all_workloads_agree_across_executors() {
    for w in llva_workloads::all() {
        let reference = interp_result(&w);
        for isa in TargetIsa::ALL {
            let native = native_result(&w, isa);
            assert_eq!(
                native, reference,
                "{}: {isa} produced {native}, interpreter produced {reference}",
                w.name
            );
        }
    }
}

#[test]
fn optimized_workloads_agree_with_unoptimized() {
    for w in llva_workloads::all() {
        let reference = interp_result(&w);
        let mut m = w.compile(TargetConfig::default());
        let mut pm = llva_opt::link_time_pipeline(&["main"]);
        pm.run(&mut m);
        llva_core::verifier::verify_module(&m)
            .unwrap_or_else(|e| panic!("{} after opt: {e}", w.name));
        let mut interp = Interpreter::new(&m);
        interp.set_fuel(2_000_000_000);
        let optimized = interp
            .run("main", &[])
            .unwrap_or_else(|e| panic!("{} (optimized interp): {e}", w.name));
        assert_eq!(optimized, reference, "{}: optimization changed semantics", w.name);
        // and natively
        let mut mgr = ExecutionManager::new(m, TargetIsa::X86);
        let native = mgr
            .run("main", &[])
            .unwrap_or_else(|e| panic!("{} (optimized x86): {e}", w.name))
            .value;
        assert_eq!(native, reference, "{}: optimized native disagrees", w.name);
    }
}

#[test]
fn workloads_round_trip_through_bytecode() {
    // the virtual object code is the persistent form: encode, decode,
    // re-run, same answer (paper §3.1 / §4.1).
    for w in llva_workloads::all().into_iter().take(6) {
        let reference = interp_result(&w);
        let m = w.compile(TargetConfig::default());
        let bytes = llva_core::bytecode::encode_module(&m);
        let m2 = llva_core::bytecode::decode_module(&bytes)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        llva_core::verifier::verify_module(&m2)
            .unwrap_or_else(|e| panic!("{} decoded: {e}", w.name));
        let mut interp = Interpreter::new(&m2);
        interp.set_fuel(2_000_000_000);
        assert_eq!(interp.run("main", &[]), Ok(reference), "{}", w.name);
    }
}

#[test]
fn workloads_round_trip_through_assembly() {
    // printer → parser round trip preserves semantics
    for w in llva_workloads::all().into_iter().take(6) {
        let reference = interp_result(&w);
        let m = w.compile(TargetConfig::default());
        let text = llva_core::printer::print_module(&m);
        let m2 = llva_core::parser::parse_module(&text)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        llva_core::verifier::verify_module(&m2)
            .unwrap_or_else(|e| panic!("{} reparsed: {e}", w.name));
        let mut interp = Interpreter::new(&m2);
        interp.set_fuel(2_000_000_000);
        assert_eq!(interp.run("main", &[]), Ok(reference), "{}", w.name);
    }
}
